(* The persistent sweep journal: frame codec roundtrips at every field
   boundary, a golden frame built bit-by-bit from the JOURNAL_FORMAT.md
   field table (pinning spec to codec), torn-write recovery at every
   byte offset, resume equivalence at several job counts, duplicate and
   corruption handling, and the byte-equality property the verifier
   rests on. *)

module Bitbuf = Bitstring.Bitbuf
module Frame = Bitstring.Frame
module Journal = Sim.Journal
module Sweep = Sim.Sweep

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tmp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "oraclesize-test-journal-%d-%d.bin" (Unix.getpid ()) !counter)

let with_tmp f =
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* {1 Frame roundtrips} *)

let payload_of_bits n = Bitbuf.of_bits (List.init n (fun i -> i mod 3 = 0))

let test_frame_roundtrip () =
  List.iter
    (fun kind ->
      List.iter
        (fun key ->
          List.iter
            (fun bits ->
              let t = { Frame.kind; version = Frame.current_version; key; payload = payload_of_bits bits } in
              let s = Frame.encode t in
              check_int
                (Printf.sprintf "byte_size agrees (bits=%d)" bits)
                (String.length s) (Frame.byte_size t);
              match Frame.decode s ~pos:0 with
              | Error e -> Alcotest.failf "bits=%d key=%d: %s" bits key (Frame.error_to_string e)
              | Ok (t', next) ->
                check_int "next offset is frame end" (String.length s) next;
                check_bool "kind survives" true (t'.Frame.kind = kind);
                check_int "version survives" Frame.current_version t'.Frame.version;
                check_int "key survives" key t'.Frame.key;
                check_bool "payload survives" true (Bitbuf.equal t.Frame.payload t'.Frame.payload);
                check_string "re-encode is canonical" s (Frame.encode t'))
            [ 0; 1; 7; 8; 9; 63; 64; 65 ])
        [ 0; 1; Frame.max_key ])
    [ Frame.Superblock; Frame.Record ]

let test_frame_rejects () =
  let t key = { Frame.kind = Frame.Record; version = Frame.current_version; key; payload = Bitbuf.create () } in
  Alcotest.check_raises "negative key" (Invalid_argument "Frame.encode: negative key")
    (fun () -> ignore (Frame.encode (t (-1))));
  let s = Frame.encode (t 5) in
  (* Bad magic *)
  let bad = Bytes.of_string s in
  Bytes.set bad 0 'X';
  (match Frame.decode (Bytes.to_string bad) ~pos:0 with
  | Error (Frame.Bad_magic _) -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (* Bad kind *)
  let bad = Bytes.of_string s in
  Bytes.set bad 2 'Z';
  (match Frame.decode (Bytes.to_string bad) ~pos:0 with
  | Error (Frame.Bad_kind _) -> ()
  | _ -> Alcotest.fail "bad kind accepted");
  (* Bad version: breaks before the CRC is even checked *)
  let bad = Bytes.of_string s in
  Bytes.set bad 3 '\x07';
  (match Frame.decode (Bytes.to_string bad) ~pos:0 with
  | Error (Frame.Unsupported_version { found = 7; _ }) -> ()
  | _ -> Alcotest.fail "bad version accepted");
  (* Reserved key bits set *)
  let bad = Bytes.of_string s in
  Bytes.set bad 4 '\x80';
  (match Frame.decode (Bytes.to_string bad) ~pos:0 with
  | Error (Frame.Key_out_of_range _) -> ()
  | _ -> Alcotest.fail "out-of-range key accepted");
  (* Flipped payload-adjacent byte: CRC catches it *)
  let witness = Frame.encode { (t 5) with Frame.payload = payload_of_bits 16 } in
  let bad = Bytes.of_string witness in
  Bytes.set bad 15 (Char.chr (Char.code (Bytes.get bad 15) lxor 0x40));
  (match Frame.decode (Bytes.to_string bad) ~pos:0 with
  | Error (Frame.Bad_crc _) -> ()
  | _ -> Alcotest.fail "bit flip accepted");
  (* Nonzero padding: not a canonical encoding *)
  let odd = Frame.encode { (t 5) with Frame.payload = payload_of_bits 3 } in
  let bad = Bytes.of_string odd in
  let pad_byte = Frame.header_bytes in
  Bytes.set bad pad_byte (Char.chr (Char.code (Bytes.get bad pad_byte) lor 0x01));
  (* ...with the CRC recomputed so only the padding rule can object. *)
  let body = Bytes.sub bad 0 (Bytes.length bad - Frame.crc_bytes) in
  let crc = Frame.crc32_bytes body ~pos:0 ~len:(Bytes.length body) in
  for i = 0 to Frame.crc_bytes - 1 do
    Bytes.set bad
      (Bytes.length body + i)
      (Char.chr ((crc lsr (8 * (Frame.crc_bytes - 1 - i))) land 0xff))
  done;
  (match Frame.decode (Bytes.to_string bad) ~pos:0 with
  | Error (Frame.Nonzero_padding _) -> ()
  | _ -> Alcotest.fail "nonzero padding accepted");
  (* Every strict prefix is Truncated, never an exception *)
  let s = Frame.encode { (t 9) with Frame.payload = payload_of_bits 20 } in
  for len = 0 to String.length s - 1 do
    match Frame.decode (String.sub s 0 len) ~pos:0 with
    | Error (Frame.Truncated _) -> ()
    | Error e -> Alcotest.failf "prefix %d: wrong error %s" len (Frame.error_to_string e)
    | Ok _ -> Alcotest.failf "prefix %d decoded" len
  done

(* {1 Entry payload codec: field boundaries} *)

let base_entry =
  {
    Journal.n = 0;
    m = 0;
    messages = 0;
    rounds = 0;
    advice_bits = 0;
    raw_advice_bits = 0;
    faults = 0;
    fallbacks = 0;
    tampered = 0;
    retransmits = 0;
    corrected_bits = 0;
    informed = 0;
    verdict_class = Journal.Completed;
    verdict = "";
  }

let roundtrip_entry ?(key = 12345) e =
  let s = Journal.encode_entry ~key e in
  match Frame.decode s ~pos:0 with
  | Error err -> Alcotest.failf "frame: %s" (Frame.error_to_string err)
  | Ok (t, next) ->
    check_int "no trailing bytes" (String.length s) next;
    check_int "key" key t.Frame.key;
    (match Journal.decode_payload t.Frame.payload with
    | Error msg -> Alcotest.failf "payload: %s" msg
    | Ok e' -> e')

let max_count = 0xffffffff (* 2^32 - 1: the counters' full width *)

let max_volume = 0xffffffffff (* 2^40 - 1: the volume fields' full width *)

let test_entry_field_boundaries () =
  (* Each 32-bit counter at its max, one at a time, the rest zero: a
     shifted-field bug in either codec misplaces the set bits. *)
  let counters =
    [
      (fun e v -> { e with Journal.n = v });
      (fun e v -> { e with Journal.m = v });
      (fun e v -> { e with Journal.faults = v });
      (fun e v -> { e with Journal.fallbacks = v });
      (fun e v -> { e with Journal.tampered = v });
      (fun e v -> { e with Journal.retransmits = v });
      (fun e v -> { e with Journal.corrected_bits = v });
      (fun e v -> { e with Journal.informed = v });
    ]
  in
  List.iteri
    (fun i set ->
      List.iter
        (fun v ->
          let e = set base_entry v in
          check_bool (Printf.sprintf "counter %d at %d" i v) true (roundtrip_entry e = e))
        [ 0; 1; max_count ])
    counters;
  let volumes =
    [
      (fun e v -> { e with Journal.messages = v });
      (fun e v -> { e with Journal.rounds = v });
      (fun e v -> { e with Journal.advice_bits = v });
      (fun e v -> { e with Journal.raw_advice_bits = v });
    ]
  in
  List.iteri
    (fun i set ->
      List.iter
        (fun v ->
          let e = set base_entry v in
          check_bool (Printf.sprintf "volume %d at %d" i v) true (roundtrip_entry e = e))
        [ 0; 1; max_volume ])
    volumes;
  List.iter
    (fun c ->
      let e = { base_entry with Journal.verdict_class = c } in
      check_bool (Journal.class_name c) true (roundtrip_entry e = e))
    [ Journal.Completed; Journal.Degraded; Journal.Stalled; Journal.Violated ];
  (* All fields at max at once: 434 bits of ones except the class. *)
  let all_max =
    {
      Journal.n = max_count;
      m = max_count;
      messages = max_volume;
      rounds = max_volume;
      advice_bits = max_volume;
      raw_advice_bits = max_volume;
      faults = max_count;
      fallbacks = max_count;
      tampered = max_count;
      retransmits = max_count;
      corrected_bits = max_count;
      informed = max_count;
      verdict_class = Journal.Violated;
      verdict = "x";
    }
  in
  check_bool "all fields at max" true (roundtrip_entry all_max = all_max)

let test_entry_verdict_strings () =
  List.iter
    (fun verdict ->
      let e = { base_entry with Journal.verdict } in
      check_bool
        (Printf.sprintf "verdict %d bytes" (String.length verdict))
        true
        (roundtrip_entry e = e))
    [ ""; "x"; String.init 256 Char.chr; String.make 1000 'v' ]

let test_entry_rejects_oversized () =
  List.iter
    (fun e ->
      match Journal.encode_entry ~key:1 e with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "oversized field encoded")
    [
      { base_entry with Journal.n = max_count + 1 };
      { base_entry with Journal.messages = max_volume + 1 };
      { base_entry with Journal.n = -1 };
      { base_entry with Journal.verdict = String.make 65536 'v' };
    ]

let test_payload_length_mismatch () =
  (* A payload whose verdict-length field overruns the actual bits must
     be rejected, not read out of bounds. *)
  let s = Journal.encode_entry ~key:3 { base_entry with Journal.verdict = "ab" } in
  match Frame.decode s ~pos:0 with
  | Error e -> Alcotest.failf "frame: %s" (Frame.error_to_string e)
  | Ok (t, _) ->
    let bits = Bitbuf.to_bits t.Frame.payload in
    let truncated = Bitbuf.of_bits (List.filteri (fun i _ -> i < Journal.fixed_payload_bits + 8) bits) in
    (match Journal.decode_payload truncated with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "short verdict accepted");
    let short = Bitbuf.of_bits (List.filteri (fun i _ -> i < 10) bits) in
    (match Journal.decode_payload short with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "10-bit payload accepted")

(* {1 The golden frame: spec table -> bytes, independently of the codec} *)

(* A bare-hands bit writer, deliberately sharing nothing with Bitbuf. *)
let golden_frame () =
  let bits = ref [] in
  let put ~width v =
    for i = width - 1 downto 0 do
      bits := ((v lsr i) land 1 = 1) :: !bits
    done
  in
  (* Header — JOURNAL_FORMAT.md "Frame layout": magic 16, kind 8,
     version 8, key 64 (two 32-bit halves, top two bits zero), payload
     length in bits 24. *)
  let key = 0x0123456789abcde in
  let verdict = "completed" in
  let payload_bits = 434 + (8 * String.length verdict) in
  put ~width:16 0x4f4a;
  put ~width:8 0x52 (* 'R' *);
  put ~width:8 1;
  put ~width:32 (key lsr 32);
  put ~width:32 (key land 0xffffffff);
  put ~width:24 payload_bits;
  (* Record payload — "Record payload" field table, in order. *)
  put ~width:32 24 (* n *);
  put ~width:32 31 (* m *);
  put ~width:40 107 (* messages *);
  put ~width:40 12 (* rounds *);
  put ~width:40 96 (* advice_bits *);
  put ~width:40 96 (* raw_advice_bits *);
  put ~width:32 0 (* faults *);
  put ~width:32 0 (* fallbacks *);
  put ~width:32 0 (* tampered *);
  put ~width:32 3 (* retransmits *);
  put ~width:32 0 (* corrected_bits *);
  put ~width:32 24 (* informed *);
  put ~width:2 0 (* class: completed *);
  put ~width:16 (String.length verdict);
  String.iter (fun c -> put ~width:8 (Char.code c)) verdict;
  (* Zero padding to a byte boundary. *)
  while List.length !bits mod 8 <> 0 do
    bits := false :: !bits
  done;
  let body = List.rev !bits in
  let body_bytes =
    let n = List.length body / 8 in
    let arr = Array.of_list body in
    Bytes.init n (fun i ->
        let b = ref 0 in
        for j = 0 to 7 do
          b := (!b lsl 1) lor if arr.((8 * i) + j) then 1 else 0
        done;
        Char.chr !b)
  in
  (* CRC-32 trailer — generator 0x04C11DB7, MSB-first, zero init,
     augmented, no reflection, no final XOR — via the exposed engine. *)
  let crc = Frame.crc32_bytes body_bytes ~pos:0 ~len:(Bytes.length body_bytes) in
  let entry =
    {
      Journal.n = 24;
      m = 31;
      messages = 107;
      rounds = 12;
      advice_bits = 96;
      raw_advice_bits = 96;
      faults = 0;
      fallbacks = 0;
      tampered = 0;
      retransmits = 3;
      corrected_bits = 0;
      informed = 24;
      verdict_class = Journal.Completed;
      verdict;
    }
  in
  let frame =
    Bytes.to_string body_bytes
    ^ String.init 4 (fun i -> Char.chr ((crc lsr (8 * (3 - i))) land 0xff))
  in
  (key, entry, frame)

let test_golden_frame () =
  let key, entry, golden = golden_frame () in
  check_int "spec fixed payload is 434 bits" 434 Journal.fixed_payload_bits;
  check_int "spec header is 15 bytes" 15 Frame.header_bytes;
  check_int "spec trailer is 4 bytes" 4 Frame.crc_bytes;
  check_int "spec magic is OJ" 0x4f4a Frame.magic;
  (* encode produces exactly the spec-derived bytes... *)
  check_string "encode_entry matches the spec-built frame" golden
    (Journal.encode_entry ~key entry);
  (* ...and decodes back to the same entry. *)
  match Frame.decode golden ~pos:0 with
  | Error e -> Alcotest.failf "golden frame rejected: %s" (Frame.error_to_string e)
  | Ok (t, next) ->
    check_int "golden frame consumed fully" (String.length golden) next;
    check_int "golden key" key t.Frame.key;
    (match Journal.decode_payload t.Frame.payload with
    | Error msg -> Alcotest.failf "golden payload: %s" msg
    | Ok e' -> check_bool "golden entry" true (e' = entry))

(* {1 The store: create, replay, torn tails, duplicates} *)

let mk_entry i =
  {
    Journal.n = i;
    m = 2 * i;
    messages = (i * 31) + 7;
    rounds = i mod 7;
    advice_bits = i * 3;
    raw_advice_bits = i * 2;
    faults = i mod 5;
    fallbacks = i mod 3;
    tampered = i mod 2;
    retransmits = i;
    corrected_bits = i / 2;
    informed = i;
    verdict_class =
      (match i mod 4 with
      | 0 -> Journal.Completed
      | 1 -> Journal.Degraded
      | 2 -> Journal.Stalled
      | _ -> Journal.Violated);
    verdict = Printf.sprintf "verdict-%d" i;
  }

let mk_key i = Sweep.derive_seed 9 [ "test-journal"; string_of_int i ]

let ctx = { Journal.spec = "test-spec"; extra = "test-extra" }

let fill_journal path n =
  match Journal.open_ ~expect:ctx ~path () with
  | Error e -> Alcotest.failf "open fresh: %s" e
  | Ok (j, _) ->
    for i = 0 to n - 1 do
      Journal.append j ~key:(mk_key i) (mk_entry i)
    done;
    Journal.close j

let test_store_basic () =
  with_tmp (fun path ->
      fill_journal path 10;
      match Journal.open_ ~expect:ctx ~path () with
      | Error e -> Alcotest.failf "reopen: %s" e
      | Ok (j, stats) ->
        check_int "replayed" 10 stats.Journal.replayed;
        check_int "no torn bytes" 0 stats.Journal.torn_bytes;
        check_int "no duplicates" 0 stats.Journal.duplicates;
        check_int "count" 10 (Journal.count j);
        check_int "appended through this handle" 0 (Journal.appended j);
        for i = 0 to 9 do
          check_bool "mem" true (Journal.mem j (mk_key i));
          match Journal.find j (mk_key i) with
          | Some e -> check_bool (Printf.sprintf "entry %d" i) true (e = mk_entry i)
          | None -> Alcotest.failf "entry %d missing" i
        done;
        (* iter replays file order *)
        let seen = ref [] in
        Journal.iter j (fun key _ -> seen := key :: !seen);
        check_bool "iter in file order" true
          (List.rev !seen = List.init 10 mk_key);
        (* appending a journaled key is refused *)
        (match Journal.append j ~key:(mk_key 3) (mk_entry 3) with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "duplicate append accepted");
        Journal.close j;
        Journal.close j (* idempotent *))

let test_store_context_mismatch () =
  with_tmp (fun path ->
      fill_journal path 3;
      match Journal.open_ ~expect:{ ctx with Journal.extra = "other" } ~path () with
      | Error msg ->
        check_bool "mentions the mismatch" true
          (String.length msg > 0 && String.sub msg 0 7 = "journal")
      | Ok _ -> Alcotest.fail "context mismatch accepted")

let test_store_missing_without_expect () =
  with_tmp (fun path ->
      match Journal.open_ ~path () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "opened a journal that does not exist")

(* The torn-write corpus: truncate a valid journal at EVERY byte offset;
   open must recover the longest valid frame prefix, never raise, and
   leave the file appendable. *)
let test_torn_corpus () =
  with_tmp (fun path ->
      fill_journal path 5;
      let data = read_file path in
      let frame_ends =
        (* Byte offsets at which a frame ends: superblock, then records. *)
        let rec loop pos acc =
          if pos >= String.length data then List.rev acc
          else
            match Frame.decode data ~pos with
            | Ok (_, next) -> loop next (next :: acc)
            | Error _ -> List.rev acc
        in
        loop 0 []
      in
      check_int "corpus has 6 frames" 6 (List.length frame_ends);
      for cut = 0 to String.length data do
        write_file path (String.sub data 0 cut);
        let expected_records =
          (* Complete record frames fully inside the cut (the superblock
             is frame 1, so subtract it). *)
          max 0 (List.length (List.filter (fun e -> e <= cut) frame_ends) - 1)
        in
        match Journal.open_ ~expect:ctx ~path () with
        | Error e -> Alcotest.failf "cut=%d: open failed: %s" cut e
        | Ok (j, stats) ->
          check_int (Printf.sprintf "cut=%d replayed" cut) expected_records stats.Journal.replayed;
          (* Recovery truncated the file back to the valid prefix (or
             reinitialized it when the superblock itself was torn). *)
          let good_prefix =
            List.fold_left (fun acc e -> if e <= cut then e else acc) 0 frame_ends
          in
          if good_prefix > 0 then begin
            check_int
              (Printf.sprintf "cut=%d torn bytes" cut)
              (cut - good_prefix) stats.Journal.torn_bytes;
            check_int
              (Printf.sprintf "cut=%d file truncated" cut)
              good_prefix
              (String.length (read_file path))
          end;
          (* The recovered journal accepts appends. *)
          Journal.append j ~key:(mk_key 1000) (mk_entry 40);
          Journal.close j;
          (match Journal.open_ ~expect:ctx ~path () with
          | Error e -> Alcotest.failf "cut=%d: reopen failed: %s" cut e
          | Ok (j2, stats2) ->
            check_int
              (Printf.sprintf "cut=%d after append" cut)
              (expected_records + 1) stats2.Journal.replayed;
            check_bool "appended entry survived" true
              (Journal.find j2 (mk_key 1000) = Some (mk_entry 40));
            Journal.close j2)
      done)

let test_duplicate_frames_first_wins () =
  with_tmp (fun path ->
      fill_journal path 4;
      (* Forge a duplicate frame for key 2 with different content, and a
         re-encoding of key 3, by appending raw bytes. *)
      let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
      output_string oc (Journal.encode_entry ~key:(mk_key 2) (mk_entry 77));
      output_string oc (Journal.encode_entry ~key:(mk_key 3) (mk_entry 3));
      close_out oc;
      (match Journal.open_ ~expect:ctx ~path () with
      | Error e -> Alcotest.failf "open: %s" e
      | Ok (j, stats) ->
        check_int "replayed distinct keys" 4 stats.Journal.replayed;
        check_int "duplicates counted" 2 stats.Journal.duplicates;
        check_bool "first occurrence wins" true (Journal.find j (mk_key 2) = Some (mk_entry 2));
        Journal.close j);
      (* Compaction drops the duplicate frames and the file shrinks back
         to the canonical bytes. *)
      match Journal.compact ~path () with
      | Error e -> Alcotest.failf "compact: %s" e
      | Ok (kept, stats) ->
        check_int "kept" 4 kept;
        check_int "compact saw duplicates" 2 stats.Journal.duplicates;
        let recompacted = read_file path in
        (match Journal.compact ~path () with
        | Error e -> Alcotest.failf "recompact: %s" e
        | Ok _ -> ());
        check_string "compaction is idempotent" recompacted (read_file path))

let test_bit_flip_truncates () =
  with_tmp (fun path ->
      fill_journal path 5;
      let data = read_file path in
      (* Find the start of the third record frame and flip a bit in it:
         recovery keeps the two records before it, drops it and
         everything after. *)
      let rec nth_end n pos =
        if n = 0 then pos
        else
          match Frame.decode data ~pos with
          | Ok (_, next) -> nth_end (n - 1) next
          | Error _ -> Alcotest.fail "corpus shorter than expected"
      in
      let third = nth_end 3 0 (* superblock + 2 records *) in
      let bad = Bytes.of_string data in
      Bytes.set bad (third + 20) (Char.chr (Char.code (Bytes.get bad (third + 20)) lxor 0x10));
      write_file path (Bytes.to_string bad);
      match Journal.open_ ~expect:ctx ~path () with
      | Error e -> Alcotest.failf "open: %s" e
      | Ok (j, stats) ->
        check_int "records before the flip survive" 2 stats.Journal.replayed;
        check_bool "torn tail includes the flipped frame" true (stats.Journal.torn_bytes > 0);
        check_int "file truncated to the valid prefix" third (String.length (read_file path));
        Journal.close j)

let test_rewritten_record_caught_by_byte_compare () =
  (* A consistently-rewritten record (valid CRC, wrong content) passes
     replay — only the verifier's byte-equality against re-execution can
     catch it.  Model both halves here. *)
  with_tmp (fun path ->
      fill_journal path 3;
      let data = read_file path in
      let truth = mk_entry 1 in
      let lie = { truth with Journal.messages = truth.Journal.messages + 1 } in
      let original = Journal.encode_entry ~key:(mk_key 1) truth in
      let forged = Journal.encode_entry ~key:(mk_key 1) lie in
      check_int "forgery has the original's length" (String.length original)
        (String.length forged);
      (* Splice the forged frame over the original. *)
      let idx =
        let rec find pos =
          if pos + String.length original > String.length data then
            Alcotest.fail "original frame not found"
          else if String.sub data pos (String.length original) = original then pos
          else find (pos + 1)
        in
        find 0
      in
      write_file path
        (String.sub data 0 idx
        ^ forged
        ^ String.sub data
            (idx + String.length original)
            (String.length data - idx - String.length original));
      match Journal.open_ ~expect:ctx ~path () with
      | Error e -> Alcotest.failf "open: %s" e
      | Ok (j, stats) ->
        (* Replay does NOT catch it... *)
        check_int "forged journal replays fully" 3 stats.Journal.replayed;
        check_int "no torn bytes" 0 stats.Journal.torn_bytes;
        let stored = match Journal.find j (mk_key 1) with Some e -> e | None -> assert false in
        (* ...byte equality against re-execution does. *)
        check_bool "verifier's byte-compare detects the rewrite" false
          (Journal.encode_entry ~key:(mk_key 1) stored
          = Journal.encode_entry ~key:(mk_key 1) truth);
        Journal.close j)

let test_superblock_reinit_window () =
  with_tmp (fun path ->
      (* A file holding half a superblock is the crash-during-creation
         window: with an expected context, open reinitializes. *)
      write_file path "\x4f\x4a\x53";
      (match Journal.open_ ~expect:ctx ~path () with
      | Error e -> Alcotest.failf "reinit: %s" e
      | Ok (j, stats) ->
        check_int "nothing replayed" 0 stats.Journal.replayed;
        Journal.append j ~key:5 (mk_entry 5);
        Journal.close j);
      (* Without an expectation the same file is an error, not a wipe. *)
      write_file path "\x4f\x4a\x53";
      match Journal.open_ ~path () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt superblock accepted without expect")

(* {1 Journaled execution: resume equivalence at every job count} *)

let synth_tasks = Array.init 100 (fun i -> i)

let synth_key i = Sweep.derive_seed 7 [ "synth"; string_of_int i ]

let synth_ctx = { Journal.spec = "synth-grid"; extra = "" }

let run_synth ?journal ~jobs () =
  let emitted = ref [] in
  let result =
    Sweep.map_journaled ~jobs ?journal ~chunk:8 ~key:synth_key
      ~local:(fun () -> ())
      ~f:(fun () _i t -> mk_entry t)
      ~emit:(fun i t e -> emitted := (i, t, e) :: !emitted)
      synth_tasks
  in
  (result, List.rev !emitted)

let test_map_journaled_without_journal () =
  let result, emitted = run_synth ~jobs:3 () in
  match result with
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok stats ->
    check_int "total" 100 stats.Sweep.total;
    check_int "executed" 100 stats.Sweep.executed;
    check_int "skipped" 0 stats.Sweep.skipped;
    check_bool "no recovery stats" true (stats.Sweep.recovery = None);
    check_int "all emitted" 100 (List.length emitted);
    List.iteri
      (fun idx (i, t, e) ->
        check_int "emit order" idx i;
        check_bool "entry matches task" true (e = mk_entry t))
      emitted

let test_resume_equivalence () =
  with_tmp (fun cold_path ->
      (* The cold run: jobs=1, straight through. *)
      let cold_result, cold_emitted = run_synth ~journal:(cold_path, synth_ctx) ~jobs:1 () in
      (match cold_result with
      | Error e -> Alcotest.failf "cold: %s" e
      | Ok stats -> check_int "cold executed all" 100 stats.Sweep.executed);
      let cold_bytes = read_file cold_path in
      List.iter
        (fun jobs ->
          with_tmp (fun path ->
              (* Interrupted run: journal holds a torn prefix of the
                 work (cut mid-frame at 60% of the file). *)
              write_file path (String.sub cold_bytes 0 (String.length cold_bytes * 6 / 10));
              let result, emitted = run_synth ~journal:(path, synth_ctx) ~jobs () in
              match result with
              | Error e -> Alcotest.failf "jobs=%d resume: %s" jobs e
              | Ok stats ->
                check_bool
                  (Printf.sprintf "jobs=%d: some points were replayed" jobs)
                  true (stats.Sweep.skipped > 0);
                check_int
                  (Printf.sprintf "jobs=%d: replay + execution covers the grid" jobs)
                  100
                  (stats.Sweep.skipped + stats.Sweep.executed);
                (* The headline guarantee, both halves: the emission
                   stream and the final journal bytes are identical to
                   the uninterrupted jobs=1 run. *)
                check_bool
                  (Printf.sprintf "jobs=%d: emission identical to cold run" jobs)
                  true (emitted = cold_emitted);
                check_string
                  (Printf.sprintf "jobs=%d: journal bytes identical to cold run" jobs)
                  cold_bytes (read_file path)))
        [ 1; 2; 7 ])

let test_map_journaled_validation () =
  (match run_synth ~jobs:0 () with
  | exception Invalid_argument _ -> Alcotest.fail "jobs=0 should clamp, not raise"
  | _ -> ());
  (match
     Sweep.map_journaled ~jobs:1 ~chunk:0 ~key:synth_key
       ~local:(fun () -> ())
       ~f:(fun () _ t -> mk_entry t)
       ~emit:(fun _ _ _ -> ())
       synth_tasks
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "chunk=0 accepted");
  (match
     Sweep.map_journaled ~jobs:1
       ~key:(fun _ -> 42)
       ~local:(fun () -> ())
       ~f:(fun () _ t -> mk_entry t)
       ~emit:(fun _ _ _ -> ())
       synth_tasks
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "colliding keys accepted");
  match
    Sweep.map_journaled ~jobs:1
      ~key:(fun t -> t - 50)
      ~local:(fun () -> ())
      ~f:(fun () _ t -> mk_entry t)
      ~emit:(fun _ _ _ -> ())
      synth_tasks
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative key accepted"

let test_map_journaled_failures_not_journaled () =
  with_tmp (fun path ->
      let run () =
        let emitted = ref 0 in
        let result =
          Sweep.map_journaled ~jobs:2 ~journal:(path, synth_ctx) ~chunk:4 ~key:synth_key
            ~local:(fun () -> ())
            ~f:(fun () _i t -> if t mod 10 = 3 then failwith "unlucky" else mk_entry t)
            ~emit:(fun _ _ _ -> incr emitted)
            synth_tasks
        in
        (result, !emitted)
      in
      (match run () with
      | Error e, _ -> Alcotest.failf "run: %s" e
      | Ok stats, emitted ->
        check_int "failures collected" 10 (List.length stats.Sweep.failed);
        check_int "successes executed" 90 stats.Sweep.executed;
        check_int "only successes emitted" 90 emitted;
        List.iter
          (fun (i, msg) ->
            check_int "failed index is the unlucky one" 3 (synth_tasks.(i) mod 10);
            check_bool "message captured" true (msg = "Failure(\"unlucky\")" || msg <> ""))
          stats.Sweep.failed);
      (* Failed points were not journaled: a second run retries exactly
         those and only those. *)
      match run () with
      | Error e, _ -> Alcotest.failf "second run: %s" e
      | Ok stats, _ ->
        check_int "second run replays the 90" 90 stats.Sweep.skipped;
        check_int "second run retries the 10" 10 (List.length stats.Sweep.failed))

let test_on_append_counts () =
  with_tmp (fun path ->
      let counts = ref [] in
      let result =
        Sweep.map_journaled ~jobs:3 ~journal:(path, synth_ctx) ~chunk:8 ~key:synth_key
          ~on_append:(fun n -> counts := n :: !counts)
          ~local:(fun () -> ())
          ~f:(fun () _i t -> mk_entry t)
          ~emit:(fun _ _ _ -> ())
          synth_tasks
      in
      (match result with Error e -> Alcotest.failf "run: %s" e | Ok _ -> ());
      check_bool "on_append saw 1..100 in order" true
        (List.rev !counts = List.init 100 (fun i -> i + 1)))

let suite =
  [
    Alcotest.test_case "frame roundtrips: kinds x keys x payload widths" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "frame rejects malformed input totally" `Quick test_frame_rejects;
    Alcotest.test_case "entry fields roundtrip at every boundary" `Quick
      test_entry_field_boundaries;
    Alcotest.test_case "verdict strings: empty, binary, long" `Quick test_entry_verdict_strings;
    Alcotest.test_case "oversized fields are rejected at encode" `Quick
      test_entry_rejects_oversized;
    Alcotest.test_case "payload length mismatches are rejected" `Quick
      test_payload_length_mismatch;
    Alcotest.test_case "golden frame: spec table bytes == codec bytes" `Quick test_golden_frame;
    Alcotest.test_case "store: create, replay, find, iter, dup append" `Quick test_store_basic;
    Alcotest.test_case "store: context mismatch refused" `Quick test_store_context_mismatch;
    Alcotest.test_case "store: missing file without expect is an error" `Quick
      test_store_missing_without_expect;
    Alcotest.test_case "torn corpus: recovery at every byte offset" `Quick test_torn_corpus;
    Alcotest.test_case "duplicate frames: first wins, compact drops them" `Quick
      test_duplicate_frames_first_wins;
    Alcotest.test_case "bit flip truncates at the damaged frame" `Quick test_bit_flip_truncates;
    Alcotest.test_case "rewritten record: replay passes, byte-compare catches" `Quick
      test_rewritten_record_caught_by_byte_compare;
    Alcotest.test_case "superblock reinit window" `Quick test_superblock_reinit_window;
    Alcotest.test_case "map_journaled without journal = map" `Quick
      test_map_journaled_without_journal;
    Alcotest.test_case "resume equivalence at jobs 1, 2, 7" `Quick test_resume_equivalence;
    Alcotest.test_case "map_journaled validates chunk and keys" `Quick
      test_map_journaled_validation;
    Alcotest.test_case "failed points are not journaled, retried on resume" `Quick
      test_map_journaled_failures_not_journaled;
    Alcotest.test_case "on_append reports cumulative durable records" `Quick
      test_on_append_counts;
  ]
