open Netgraph

let check_int = Alcotest.(check int)

let test_bfs_path () =
  let g = Gen.path 6 in
  let dist, parent = Traverse.bfs g ~root:0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; 5 |] dist;
  Alcotest.(check (option int)) "root parent" None parent.(0);
  Alcotest.(check (option int)) "chain parent" (Some 2) parent.(3)

let test_bfs_cycle () =
  let g = Gen.cycle 6 in
  let dist, _ = Traverse.bfs g ~root:0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 2; 1 |] dist

let test_bfs_disconnected () =
  let g =
    Graph.make ~n:4
      [ { Graph.u = 0; pu = 0; v = 1; pv = 0 }; { Graph.u = 2; pu = 0; v = 3; pv = 0 } ]
  in
  let dist, parent = Traverse.bfs g ~root:0 in
  check_int "unreachable" (-1) dist.(2);
  Alcotest.(check (option int)) "no parent" None parent.(3)

let test_dfs_spans () =
  let g = Gen.grid ~rows:4 ~cols:4 in
  let parent = Traverse.dfs_parents g ~root:0 in
  let reached = Array.make 16 false in
  reached.(0) <- true;
  Array.iteri (fun v p -> if p <> None then reached.(v) <- true) parent;
  Alcotest.(check bool) "all reached" true (Array.for_all (fun b -> b) reached)

let test_components () =
  let g =
    Graph.make ~n:5
      [ { Graph.u = 0; pu = 0; v = 1; pv = 0 }; { Graph.u = 2; pu = 0; v = 3; pv = 0 } ]
  in
  let comp, k = Traverse.components g in
  check_int "three components" 3 k;
  check_int "same component" comp.(0) comp.(1);
  Alcotest.(check bool) "different" true (comp.(0) <> comp.(2));
  Alcotest.(check bool) "isolated node" true (comp.(4) <> comp.(0) && comp.(4) <> comp.(2))

let test_diameter_known () =
  check_int "path" 5 (Traverse.diameter (Gen.path 6));
  check_int "cycle even" 3 (Traverse.diameter (Gen.cycle 6));
  check_int "cycle odd" 3 (Traverse.diameter (Gen.cycle 7));
  check_int "complete" 1 (Traverse.diameter (Gen.complete 5));
  check_int "star" 2 (Traverse.diameter (Gen.star 5));
  check_int "grid" 5 (Traverse.diameter (Gen.grid ~rows:3 ~cols:4));
  check_int "hypercube" 4 (Traverse.diameter (Gen.hypercube ~dim:4))

let test_eccentricity () =
  let g = Gen.path 5 in
  check_int "end" 4 (Traverse.eccentricity g 0);
  check_int "middle" 2 (Traverse.eccentricity g 2)

let test_eccentricity_disconnected () =
  let g =
    Graph.make ~n:3 [ { Graph.u = 0; pu = 0; v = 1; pv = 0 } ]
  in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Traverse.eccentricity: disconnected graph") (fun () ->
      ignore (Traverse.eccentricity g 0))

let test_distance () =
  let g = Gen.cycle 8 in
  Alcotest.(check (option int)) "around" (Some 4) (Traverse.distance g 0 4);
  Alcotest.(check (option int)) "self" (Some 0) (Traverse.distance g 3 3);
  let disc =
    Graph.make ~n:3 [ { Graph.u = 0; pu = 0; v = 1; pv = 0 } ]
  in
  Alcotest.(check (option int)) "unreachable" None (Traverse.distance disc 0 2)

let test_bfs_explores_in_port_order () =
  (* On the complete graph the BFS parent of every non-root node is the
     root, and children order follows ports. *)
  let g = Gen.complete 5 in
  let _, parent = Traverse.bfs g ~root:0 in
  for v = 1 to 4 do
    Alcotest.(check (option int)) (Printf.sprintf "parent %d" v) (Some 0) parent.(v)
  done

let suite =
  [
    Alcotest.test_case "bfs on path" `Quick test_bfs_path;
    Alcotest.test_case "bfs on cycle" `Quick test_bfs_cycle;
    Alcotest.test_case "bfs on disconnected" `Quick test_bfs_disconnected;
    Alcotest.test_case "dfs spans" `Quick test_dfs_spans;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "diameter of known graphs" `Quick test_diameter_known;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    Alcotest.test_case "eccentricity on disconnected" `Quick test_eccentricity_disconnected;
    Alcotest.test_case "distance" `Quick test_distance;
    Alcotest.test_case "bfs port order" `Quick test_bfs_explores_in_port_order;
  ]
