open Bitstring

let check_bits = Alcotest.(check (list bool))
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let test_empty () =
  let b = Bitbuf.create () in
  check_int "length" 0 (Bitbuf.length b);
  check_bool "is_empty" true (Bitbuf.is_empty b);
  check_string "to_string" "" (Bitbuf.to_string b)

let test_add_bit () =
  let b = Bitbuf.create () in
  Bitbuf.add_bit b true;
  Bitbuf.add_bit b false;
  Bitbuf.add_bit b true;
  check_int "length" 3 (Bitbuf.length b);
  check_bool "bit 0" true (Bitbuf.get b 0);
  check_bool "bit 1" false (Bitbuf.get b 1);
  check_bool "bit 2" true (Bitbuf.get b 2);
  check_string "render" "101" (Bitbuf.to_string b)

let test_add_bits_order () =
  let b = Bitbuf.create () in
  Bitbuf.add_bits b [ true; true; false; true ];
  check_string "order preserved" "1101" (Bitbuf.to_string b)

let test_growth_across_bytes () =
  let b = Bitbuf.create ~capacity:1 () in
  for i = 0 to 99 do
    Bitbuf.add_bit b (i mod 3 = 0)
  done;
  check_int "length" 100 (Bitbuf.length b);
  for i = 0 to 99 do
    check_bool (Printf.sprintf "bit %d" i) (i mod 3 = 0) (Bitbuf.get b i)
  done

let test_add_int_msb_first () =
  let b = Bitbuf.create () in
  Bitbuf.add_int b ~width:4 0b1011;
  check_string "msb first" "1011" (Bitbuf.to_string b)

let test_add_int_leading_zeros () =
  let b = Bitbuf.create () in
  Bitbuf.add_int b ~width:6 3;
  check_string "padded" "000011" (Bitbuf.to_string b)

let test_add_int_zero_width () =
  let b = Bitbuf.create () in
  Bitbuf.add_int b ~width:0 0;
  check_int "nothing written" 0 (Bitbuf.length b)

let test_add_int_overflow () =
  let b = Bitbuf.create () in
  Alcotest.check_raises "does not fit" (Invalid_argument "Bitbuf.add_int: value does not fit in width")
    (fun () -> Bitbuf.add_int b ~width:3 8)

let test_add_int_negative () =
  let b = Bitbuf.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Bitbuf.add_int: negative value") (fun () ->
      Bitbuf.add_int b ~width:3 (-1))

let test_of_string_roundtrip () =
  let s = "0110100101011" in
  check_string "roundtrip" s (Bitbuf.to_string (Bitbuf.of_string s))

let test_of_string_bad_char () =
  Alcotest.check_raises "bad char" (Invalid_argument "Bitbuf.of_string: bad character '2'")
    (fun () -> ignore (Bitbuf.of_string "0120"))

let test_of_bits_to_bits () =
  let bits = [ true; false; false; true; true ] in
  check_bits "roundtrip" bits (Bitbuf.to_bits (Bitbuf.of_bits bits))

let test_append () =
  let a = Bitbuf.of_string "101" in
  let b = Bitbuf.of_string "0110" in
  Bitbuf.append a b;
  check_string "appended" "1010110" (Bitbuf.to_string a);
  check_string "source untouched" "0110" (Bitbuf.to_string b)

let test_copy_independent () =
  let a = Bitbuf.of_string "11" in
  let b = Bitbuf.copy a in
  Bitbuf.add_bit b false;
  check_string "original" "11" (Bitbuf.to_string a);
  check_string "copy" "110" (Bitbuf.to_string b)

let test_equal () =
  check_bool "equal" true (Bitbuf.equal (Bitbuf.of_string "1010") (Bitbuf.of_string "1010"));
  check_bool "length differs" false (Bitbuf.equal (Bitbuf.of_string "101") (Bitbuf.of_string "1010"));
  check_bool "content differs" false (Bitbuf.equal (Bitbuf.of_string "1010") (Bitbuf.of_string "1011"))

let test_get_out_of_range () =
  let b = Bitbuf.of_string "10" in
  Alcotest.check_raises "index 2" (Invalid_argument "Bitbuf.get: index out of range") (fun () ->
      ignore (Bitbuf.get b 2));
  Alcotest.check_raises "negative" (Invalid_argument "Bitbuf.get: index out of range") (fun () ->
      ignore (Bitbuf.get b (-1)))

let test_reader_bits () =
  let r = Bitbuf.reader (Bitbuf.of_string "101") in
  check_bool "pos 0" true (Bitbuf.read_bit r);
  check_bool "pos 1" false (Bitbuf.read_bit r);
  check_int "remaining" 1 (Bitbuf.remaining r);
  check_int "pos" 2 (Bitbuf.pos r);
  check_bool "pos 2" true (Bitbuf.read_bit r);
  check_bool "at_end" true (Bitbuf.at_end r);
  Alcotest.check_raises "end" Bitbuf.End_of_bits (fun () -> ignore (Bitbuf.read_bit r))

let test_reader_int () =
  let b = Bitbuf.create () in
  Bitbuf.add_int b ~width:7 93;
  Bitbuf.add_int b ~width:3 5;
  let r = Bitbuf.reader b in
  check_int "first" 93 (Bitbuf.read_int r ~width:7);
  check_int "second" 5 (Bitbuf.read_int r ~width:3);
  check_bool "exhausted" true (Bitbuf.at_end r)

let test_reader_int_underflow () =
  let r = Bitbuf.reader (Bitbuf.of_string "10") in
  Alcotest.check_raises "underflow" Bitbuf.End_of_bits (fun () ->
      ignore (Bitbuf.read_int r ~width:3))

let qcheck_bits_roundtrip =
  QCheck.Test.make ~name:"of_bits/to_bits roundtrip" ~count:200
    QCheck.(small_list bool)
    (fun bits -> Bitbuf.to_bits (Bitbuf.of_bits bits) = bits)

let qcheck_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:200
    QCheck.(small_list bool)
    (fun bits ->
      let b = Bitbuf.of_bits bits in
      Bitbuf.equal b (Bitbuf.of_string (Bitbuf.to_string b)))

let qcheck_ints_roundtrip =
  QCheck.Test.make ~name:"add_int/read_int roundtrip" ~count:200
    QCheck.(small_list (int_bound 1_000_000))
    (fun values ->
      let width = 20 in
      let b = Bitbuf.create () in
      List.iter (fun v -> Bitbuf.add_int b ~width v) values;
      let r = Bitbuf.reader b in
      List.for_all (fun v -> Bitbuf.read_int r ~width = v) values && Bitbuf.at_end r)

let suite =
  [
    Alcotest.test_case "empty buffer" `Quick test_empty;
    Alcotest.test_case "add_bit/get" `Quick test_add_bit;
    Alcotest.test_case "add_bits preserves order" `Quick test_add_bits_order;
    Alcotest.test_case "growth across byte boundaries" `Quick test_growth_across_bytes;
    Alcotest.test_case "add_int is MSB-first" `Quick test_add_int_msb_first;
    Alcotest.test_case "add_int pads leading zeros" `Quick test_add_int_leading_zeros;
    Alcotest.test_case "add_int with width 0" `Quick test_add_int_zero_width;
    Alcotest.test_case "add_int overflow rejected" `Quick test_add_int_overflow;
    Alcotest.test_case "add_int negative rejected" `Quick test_add_int_negative;
    Alcotest.test_case "of_string/to_string roundtrip" `Quick test_of_string_roundtrip;
    Alcotest.test_case "of_string rejects bad chars" `Quick test_of_string_bad_char;
    Alcotest.test_case "of_bits/to_bits roundtrip" `Quick test_of_bits_to_bits;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "get out of range" `Quick test_get_out_of_range;
    Alcotest.test_case "reader bit cursor" `Quick test_reader_bits;
    Alcotest.test_case "reader reads ints" `Quick test_reader_int;
    Alcotest.test_case "reader int underflow" `Quick test_reader_int_underflow;
    QCheck_alcotest.to_alcotest qcheck_bits_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_string_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_ints_roundtrip;
  ]
