open Oracle_core
module Graph = Netgraph.Graph
module Families = Netgraph.Families

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_blind_wakes_everyone () =
  let g = Families.build Families.Dense_random ~n:24 ~seed:101 in
  let o = Neighborhood.run ~rho:0 g ~source:0 in
  check_bool "informed" true o.Neighborhood.result.Sim.Runner.all_informed;
  check_int "zero advice" 0 o.Neighborhood.advice_bits;
  (* Blind token DFS: bounded by ~4m. *)
  check_bool "Theta(m) messages" true
    (o.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent <= 4 * Graph.m g)

let test_radius_one_is_2n () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:32 ~seed:103 in
      let n = Graph.n g in
      let o = Neighborhood.run ~rho:1 g ~source:0 in
      check_bool (Families.name fam ^ " informed") true
        o.Neighborhood.result.Sim.Runner.all_informed;
      check_int (Families.name fam ^ " messages") (2 * (n - 1))
        o.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent)
    Families.all

let test_messages_drop_at_radius_one () =
  (* The AGPV shape: rho 0 -> 1 collapses messages from Theta(m) to 2(n-1),
     and rho >= 2 buys nothing more while the advice keeps growing. *)
  let g = Families.build Families.Complete ~n:32 ~seed:0 in
  let m0 = Neighborhood.run ~rho:0 g ~source:0 in
  let m1 = Neighborhood.run ~rho:1 g ~source:0 in
  let m2 = Neighborhood.run ~rho:2 g ~source:0 in
  check_bool "big drop" true
    (m0.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent
    > 4 * m1.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent);
  check_int "no further gain"
    m1.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent
    m2.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent;
  check_bool "advice grows" true
    (m2.Neighborhood.advice_bits > 2 * m1.Neighborhood.advice_bits);
  check_bool "rho-1 advice already Theta(m log n)" true
    (m1.Neighborhood.advice_bits > Graph.m g)

let test_decode_port_labels () =
  let g = Netgraph.Gen.star 5 in
  let o = Neighborhood.oracle ~rho:1 in
  let advice = o.Oracles.Oracle.advise g ~source:0 in
  let rho, labels =
    Neighborhood.decode_port_labels ~degree:4 (Oracles.Advice.get advice 0)
  in
  check_int "rho" 1 rho;
  Alcotest.(check (list int)) "center's neighbors" [ 2; 3; 4; 5 ] labels;
  let rho0, labels0 =
    Neighborhood.decode_port_labels ~degree:4 (Bitstring.Bitbuf.create ())
  in
  check_int "empty advice is rho 0" 0 rho0;
  Alcotest.(check (list int)) "no labels" [] labels0

let test_is_wakeup_scheme () =
  let g = Families.build Families.Grid ~n:16 ~seed:107 in
  let o = Neighborhood.oracle ~rho:1 in
  let advice = Oracles.Oracle.advice_fun o g ~source:0 in
  check_bool "silent until woken" true
    (Sim.Runner.run_silent_network_check ~advice g ~source:0 Neighborhood.scheme)

let test_nonzero_source () =
  let g = Families.build Families.Torus ~n:25 ~seed:109 in
  let o = Neighborhood.run ~rho:1 g ~source:7 in
  check_bool "informed" true o.Neighborhood.result.Sim.Runner.all_informed

let test_single_node () =
  let g = Netgraph.Gen.path 1 in
  let o = Neighborhood.run ~rho:1 g ~source:0 in
  check_bool "informed" true o.Neighborhood.result.Sim.Runner.all_informed;
  check_int "no messages" 0 o.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent

let test_negative_radius_rejected () =
  match Neighborhood.oracle ~rho:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative radius must be rejected"

let qcheck_token_dfs =
  QCheck.Test.make ~name:"token DFS wakes everyone at every radius" ~count:40
    QCheck.(triple (int_range 2 32) (int_range 0 999) (int_range 0 2))
    (fun (n, seed, rho) ->
      let st = Random.State.make [| n; seed |] in
      let g = Netgraph.Gen.random_connected ~n ~p:0.25 st in
      let o = Neighborhood.run ~rho g ~source:(seed mod n) in
      o.Neighborhood.result.Sim.Runner.all_informed
      && (rho = 0
         || o.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent = 2 * (n - 1)))

let suite =
  [
    Alcotest.test_case "rho=0 blind probing" `Quick test_blind_wakes_everyone;
    Alcotest.test_case "rho=1 gives 2(n-1) messages" `Quick test_radius_one_is_2n;
    Alcotest.test_case "AGPV trade-off shape" `Quick test_messages_drop_at_radius_one;
    Alcotest.test_case "advice decode" `Quick test_decode_port_labels;
    Alcotest.test_case "wakeup restriction" `Quick test_is_wakeup_scheme;
    Alcotest.test_case "non-zero source" `Quick test_nonzero_source;
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "negative radius" `Quick test_negative_radius_rejected;
    QCheck_alcotest.to_alcotest qcheck_token_dfs;
  ]

let test_all_schedulers_rho1 () =
  let g = Families.build Families.Grid ~n:25 ~seed:233 in
  List.iter
    (fun sched ->
      let o = Neighborhood.run ~scheduler:sched ~rho:1 g ~source:0 in
      check_bool (Sim.Scheduler.name sched) true o.Neighborhood.result.Sim.Runner.all_informed;
      check_int (Sim.Scheduler.name sched) (2 * (Graph.n g - 1))
        o.Neighborhood.result.Sim.Runner.stats.Sim.Runner.sent)
    Sim.Scheduler.default_suite

let suite =
  suite @ [ Alcotest.test_case "token DFS under all schedulers" `Quick test_all_schedulers_rho1 ]
