(* The distributed worker protocol: wire codec round-trips, frame
   reassembly over real pipes, truncation totality at every byte
   boundary, garbage detection, chaos spec round-trips, supervisor
   degradation when workers cannot spawn, CLI-edge validation of job
   counts, and the headline guarantee — sweep output is byte-identical
   at every worker count and under every chaos schedule, kills, hangs
   and corrupted streams included.  The end-to-end tests drive the real
   oraclesize binary (declared as a test dep), so real processes die. *)

module Frame = Bitstring.Frame
module Worker = Sim.Worker
module Journal = Sim.Journal
module Chaos = Fault.Chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Relative to the test cwd (_build/default/test). *)
let exe = "../bin/oraclesize.exe"

let sample_entry =
  {
    Journal.n = 24;
    m = 31;
    messages = 120;
    rounds = 17;
    advice_bits = 96;
    raw_advice_bits = 48;
    faults = 2;
    fallbacks = 1;
    tampered = 0;
    retransmits = 3;
    corrected_bits = 0;
    informed = 24;
    verdict_class = Journal.Degraded;
    verdict = "degraded: advice-fallback(1)";
  }

let decode_one s =
  match Frame.decode s ~pos:0 with
  | Ok (f, next) ->
    check_int "frame consumed exactly" (String.length s) next;
    f
  | Error e -> Alcotest.failf "decode failed: %s" (Frame.error_to_string e)

let roundtrip msg = Worker.parse (decode_one (Worker.encode msg))

(* {1 Wire codec} *)

let test_codec_roundtrips () =
  (match roundtrip (Worker.Hello { worker = 3; wire_version = Worker.wire_version; auth = "" }) with
  | Ok (Worker.Hello { worker = 3; wire_version = v; auth = "" }) ->
    check_int "hello version" Worker.wire_version v
  | _ -> Alcotest.fail "hello did not round-trip");
  (match roundtrip (Worker.Hello { worker = 9; wire_version = Worker.wire_version; auth = "s3cret\x00tok" }) with
  | Ok (Worker.Hello { worker = 9; wire_version = _; auth }) ->
    check_string "auth token survives byte-for-byte" "s3cret\x00tok" auth
  | _ -> Alcotest.fail "authenticated hello did not round-trip");
  (match roundtrip (Worker.Config { Journal.spec = "ns=16;reps=2"; extra = "protect=raw;retry=0" })
   with
  | Ok (Worker.Config ctx) ->
    check_string "config spec" "ns=16;reps=2" ctx.Journal.spec;
    check_string "config extra" "protect=raw;retry=0" ctx.Journal.extra
  | _ -> Alcotest.fail "config did not round-trip");
  (match roundtrip (Worker.Task_batch { seq = 7; indices = [| 5; 0; 4099 |] }) with
  | Ok (Worker.Task_batch { seq = 7; indices }) ->
    Alcotest.(check (array int)) "batch indices" [| 5; 0; 4099 |] indices
  | _ -> Alcotest.fail "task batch did not round-trip");
  (match roundtrip (Worker.Result { index = 11; result = Ok sample_entry }) with
  | Ok (Worker.Result { index = 11; result = Ok e }) ->
    check_bool "entry fields survive" true (e = sample_entry)
  | _ -> Alcotest.fail "ok result did not round-trip");
  (match roundtrip (Worker.Result { index = 2; result = Error "task blew up" }) with
  | Ok (Worker.Result { index = 2; result = Error m }) ->
    check_string "error text" "task blew up" m
  | _ -> Alcotest.fail "error result did not round-trip");
  (match roundtrip (Worker.Heartbeat { worker = 1; count = 42 }) with
  | Ok (Worker.Heartbeat { worker = 1; count = 42 }) -> ()
  | _ -> Alcotest.fail "heartbeat did not round-trip");
  match roundtrip Worker.Shutdown with
  | Ok Worker.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown did not round-trip"

let test_parse_rejects_malformed () =
  let reject name f =
    match Worker.parse f with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should not parse" name
  in
  (* Journal kinds never belong on the wire. *)
  reject "record frame"
    {
      Frame.kind = Frame.Record;
      version = Frame.current_version;
      key = 1;
      payload = Journal.entry_payload sample_entry;
    };
  reject "superblock frame"
    {
      Frame.kind = Frame.Superblock;
      version = Frame.current_version;
      key = 0;
      payload = Journal.context_payload { Journal.spec = "x"; extra = "" };
    };
  (* Payload widths are exact, not minimums. *)
  let bits n =
    let b = Bitstring.Bitbuf.create () in
    for _ = 1 to n do
      Bitstring.Bitbuf.add_bit b false
    done;
    b
  in
  reject "heartbeat with 31-bit payload"
    { Frame.kind = Frame.Heartbeat; version = Frame.current_version; key = 0; payload = bits 31 };
  reject "shutdown with payload"
    { Frame.kind = Frame.Shutdown; version = Frame.current_version; key = 0; payload = bits 1 };
  (* A task batch whose count disagrees with its payload length. *)
  let b = Bitstring.Bitbuf.create () in
  Bitstring.Bitbuf.add_int b ~width:16 3;
  Bitstring.Bitbuf.add_int b ~width:32 9;
  reject "task count 3 with one index"
    { Frame.kind = Frame.Task; version = Frame.current_version; key = 0; payload = b };
  reject "empty result payload"
    { Frame.kind = Frame.Result; version = Frame.current_version; key = 0; payload = bits 0 }

(* {1 Truncation totality}

   A crashed worker tears its last frame at an arbitrary byte.  Decoding
   any strict prefix of a heartbeat or result frame must yield Truncated
   — never an exception, never a bogus success — and Rx must answer
   "feed me more" for every such prefix. *)

let test_truncation_every_boundary () =
  List.iter
    (fun (name, msg) ->
      let s = Worker.encode msg in
      for cut = 0 to String.length s - 1 do
        (match Frame.decode (String.sub s 0 cut) ~pos:0 with
        | Error (Frame.Truncated _) -> ()
        | Error e ->
          Alcotest.failf "%s cut at %d: expected Truncated, got %s" name cut
            (Frame.error_to_string e)
        | Ok _ -> Alcotest.failf "%s cut at %d decoded successfully" name cut);
        let rx = Worker.Rx.create () in
        Worker.Rx.feed rx (Bytes.of_string (String.sub s 0 cut)) cut;
        match Worker.Rx.next rx with
        | Ok None -> ()
        | Ok (Some _) -> Alcotest.failf "%s cut at %d: Rx produced a frame" name cut
        | Error e -> Alcotest.failf "%s cut at %d: Rx errored: %s" name cut e
      done)
    [
      ("heartbeat", Worker.Heartbeat { worker = 2; count = 9 });
      ("result", Worker.Result { index = 5; result = Ok sample_entry });
      ("error-result", Worker.Result { index = 1; result = Error "boom" });
    ]

(* {1 Reassembly over a real pipe}

   Frames pushed through an OS pipe in deliberately awkward slices must
   come out whole and in order, whatever the read/write boundaries. *)

let test_rx_interleaved_pipe_reads () =
  let msgs =
    [
      Worker.Hello { worker = 0; wire_version = Worker.wire_version; auth = "tok" };
      Worker.Heartbeat { worker = 0; count = 0 };
      Worker.Result { index = 3; result = Ok sample_entry };
      Worker.Heartbeat { worker = 0; count = 1 };
      Worker.Result { index = 4; result = Error "x" };
    ]
  in
  let stream = String.concat "" (List.map Worker.encode msgs) in
  let r, w = Unix.pipe () in
  (* Write in prime-sized slices so frame boundaries never align with
     write boundaries; the stream is far below pipe capacity, so
     single-threaded write-then-read cannot block. *)
  let pos = ref 0 in
  let slice = ref 1 in
  while !pos < String.length stream do
    let len = min !slice (String.length stream - !pos) in
    let n = Unix.write_substring w stream !pos len in
    pos := !pos + n;
    slice := (!slice mod 7) + 3
  done;
  Unix.close w;
  let rx = Worker.Rx.create () in
  let buf = Bytes.create 3 in
  let out = ref [] in
  let rec drain () =
    match Worker.Rx.next rx with
    | Ok (Some f) ->
      (match Worker.parse f with
      | Ok m -> out := m :: !out
      | Error e -> Alcotest.failf "parse mid-stream: %s" e);
      drain ()
    | Ok None -> ()
    | Error e -> Alcotest.failf "Rx error mid-stream: %s" e
  in
  let rec pump () =
    let n = Unix.read r buf 0 3 in
    if n > 0 then begin
      Worker.Rx.feed rx buf n;
      drain ();
      pump ()
    end
  in
  pump ();
  Unix.close r;
  check_int "all frames reassembled" (List.length msgs) (List.length !out);
  check_bool "in order and intact" true (List.rev !out = msgs);
  check_int "no leftover bytes" 0 (Worker.Rx.pending rx)

let test_rx_garbage_is_fatal () =
  let rx = Worker.Rx.create () in
  let good = Worker.encode (Worker.Heartbeat { worker = 1; count = 0 }) in
  let junk = Chaos.garbage_bytes { Chaos.directives = []; seed = 9 } ~worker:1 in
  check_bool "garbage dodges the frame magic" true (junk.[0] <> '\x4f');
  let stream = good ^ junk in
  Worker.Rx.feed rx (Bytes.of_string stream) (String.length stream);
  (match Worker.Rx.next rx with
  | Ok (Some { Frame.kind = Frame.Heartbeat; _ }) -> ()
  | _ -> Alcotest.fail "valid frame before the garbage was lost");
  match Worker.Rx.next rx with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage after a valid frame must be a fatal stream error"

(* {1 Chaos specs} *)

let test_chaos_spec_roundtrip () =
  List.iter
    (fun spec ->
      match Chaos.of_string spec with
      | Error e -> Alcotest.failf "%S: %s" spec e
      | Ok c -> check_string spec spec (Chaos.to_string c))
    [
      "kill:worker=2,after=5";
      "kill:worker=2,after=5;hang:worker=0,after=9";
      "garbage:worker=1,after=3;seed=7";
      "partition:worker=0,after=2,for=1500";
      "delay:worker=0,after=1,ms=50";
      "slow:worker=1,after=0,ms=40";
      "trickle:worker=1,after=0";
      "partition:worker=0,after=2,for=3000;trickle:worker=1,after=0;kill:worker=2,after=4";
      "none";
    ];
  (* Defaulted arguments are printed explicitly in the canonical form. *)
  check_string "partition defaults for=3000" "partition:worker=1,after=0,for=3000"
    (Chaos.to_string (Chaos.of_string_exn "partition:worker=1,after=0"));
  check_string "delay defaults ms=25" "delay:worker=1,after=0,ms=25"
    (Chaos.to_string (Chaos.of_string_exn "delay:worker=1,after=0"));
  check_string "slow defaults ms=25" "slow:worker=1,after=0,ms=25"
    (Chaos.to_string (Chaos.of_string_exn "slow:worker=1,after=0"));
  List.iter
    (fun spec ->
      match Chaos.of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" spec)
    [
      "explode:worker=1,after=2";
      "kill:worker=1";
      "kill:after=2";
      "kill:worker=-1,after=2";
      "kill worker=1";
      "kill:worker=1,after=2,for=500";
      "delay:worker=0,after=1,for=5";
      "slow:worker=0,after=1,for=5";
      "partition:worker=0,after=1,ms=5";
      "trickle:worker=1,after=0,ms=9";
      "partition:worker=0,after=1,for=-5";
    ];
  check_bool "empty spec is none" true (Chaos.of_string "" = Ok Chaos.none)

let test_chaos_hook_fires_by_count () =
  let c = Chaos.of_string_exn "kill:worker=1,after=3;garbage:worker=0,after=0;seed=5" in
  let h1 = Chaos.hook c ~worker:1 in
  check_bool "before threshold" true (h1 ~completed:2 = `Continue);
  check_bool "at threshold" true (h1 ~completed:3 = `Kill);
  check_bool "past threshold" true (h1 ~completed:7 = `Kill);
  (match Chaos.hook c ~worker:0 ~completed:0 with
  | `Garbage g ->
    check_int "garbage is 64 bytes" 64 (String.length g);
    check_string "garbage is seeded deterministically" g (Chaos.garbage_bytes c ~worker:0)
  | _ -> Alcotest.fail "worker 0 should emit garbage immediately");
  check_bool "untargeted worker untouched" true (Chaos.hook c ~worker:5 ~completed:100 = `Continue)

(* {1 Dispatch degradation}

   A dispatch whose workers all fail to start (bogus argv: exec fails in
   the child, which exits at once) must finish the run in-process via
   the fallback — no hang, no error, every index answered. *)

let test_dispatch_degrades_to_fallback () =
  let d =
    Sim.Dispatch.create ~workers:2 ~heartbeat_timeout:5.0
      ~command:(fun ~id:_ -> [| "/nonexistent/oracle-size-worker"; "worker" |])
      ~context:{ Journal.spec = "ns=16"; extra = "protect=raw;retry=0" }
      ~fallback:(fun i -> Ok { sample_entry with Journal.n = i })
      ()
  in
  Fun.protect
    ~finally:(fun () -> Sim.Dispatch.shutdown d)
    (fun () ->
      let results = Sim.Dispatch.run d [| 0; 1; 2; 3; 4 |] in
      check_int "all indices answered" 5 (Array.length results);
      Array.iteri
        (fun i r ->
          match r with
          | Ok e -> check_int (Printf.sprintf "slot %d from fallback" i) i e.Journal.n
          | Error m -> Alcotest.failf "slot %d errored: %s" i m)
        results;
      let s = Sim.Dispatch.stats d in
      check_int "all tasks ran inline" 5 s.Sim.Dispatch.inline_tasks;
      check_int "no survivors" 0 (Sim.Dispatch.live_workers d))

(* {1 End-to-end: the real binary} *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sh cmd =
  match Unix.system cmd with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n

let temp_out name = Filename.temp_file ("oracle-worker-" ^ name) ".out"

(* Small but non-trivial: 8 points, two sizes, two reps. *)
let e2e_grid = "protocols=wakeup,broadcast;ns=16,24;reps=2;seed=7"

let test_cli_rejects_bad_jobs () =
  let cases =
    [
      ("-j 0", Printf.sprintf "%s sweep -j 0 %S" exe e2e_grid);
      ("-j -2", Printf.sprintf "%s sweep -j=-2 %S" exe e2e_grid);
      ("ORACLE_SIZE_JOBS=banana", Printf.sprintf "ORACLE_SIZE_JOBS=banana %s sweep %S" exe e2e_grid);
      ("ORACLE_SIZE_JOBS=0", Printf.sprintf "ORACLE_SIZE_JOBS=0 %s sweep %S" exe e2e_grid);
    ]
  in
  List.iter
    (fun (name, cmd) ->
      check_int (name ^ " is a CLI error (124)") 124 (sh (cmd ^ " >/dev/null 2>/dev/null")))
    cases;
  (* A valid env value must still work. *)
  check_int "ORACLE_SIZE_JOBS=2 accepted" 0
    (sh (Printf.sprintf "ORACLE_SIZE_JOBS=2 %s sweep %S >/dev/null 2>/dev/null" exe e2e_grid))

let test_cli_rejects_chaos_without_workers () =
  check_int "--chaos without --workers" 2
    (sh
       (Printf.sprintf "%s sweep --chaos 'kill:worker=0,after=1' %S >/dev/null 2>/dev/null" exe
          e2e_grid));
  check_int "malformed --chaos is a CLI error" 124
    (sh
       (Printf.sprintf "%s sweep --workers 2 --chaos 'explode:worker=0' %S >/dev/null 2>/dev/null"
          exe e2e_grid))

(* The headline invariant: sweep bytes are identical across worker
   counts and chaos schedules.  Every schedule here provably fires (the
   stderr log must name a dead worker) and the output must still match
   the in-process baseline byte for byte. *)
let test_chaos_determinism_grid () =
  let base = temp_out "base" in
  check_int "baseline sweep" 0
    (sh (Printf.sprintf "%s sweep %S --out %s 2>/dev/null" exe e2e_grid base));
  let baseline = read_file base in
  check_bool "baseline is non-empty" true (String.length baseline > 0);
  let scenarios =
    [
      (1, "none", false);
      (2, "none", false);
      (7, "none", false);
      (* Death-asserted schedules use after=0 (or a single worker):
         the handshake barrier guarantees every worker receives its
         first batch, so such faults provably fire; an after>0 fault
         on one of several workers races against siblings draining
         the queue first and may legitimately never trigger. *)
      (1, "kill:worker=0,after=1", true);
      (2, "kill:worker=1,after=0", true);
      (7, "kill:worker=2,after=0;kill:worker=5,after=0", true);
      (2, "garbage:worker=0,after=0;seed=9", true);
      (2, "hang:worker=0,after=0", true);
    ]
  in
  List.iter
    (fun (workers, chaos, expect_death) ->
      let name = Printf.sprintf "workers=%d chaos=%s" workers chaos in
      let out = temp_out "chaos" in
      let errf = temp_out "chaos-err" in
      let chaos_flag = if chaos = "none" then "" else Printf.sprintf "--chaos '%s'" chaos in
      let cmd =
        Printf.sprintf "%s sweep %S --out %s --workers %d --batch 1 --heartbeat-timeout 1 %s 2>%s"
          exe e2e_grid out workers chaos_flag errf
      in
      check_int (name ^ " exits 0") 0 (sh cmd);
      check_bool (name ^ " bytes match baseline") true (read_file out = baseline);
      let err = read_file errf in
      let mentions_death =
        let re = "dead:" in
        let n = String.length err and m = String.length re in
        let rec scan i = i + m <= n && (String.sub err i m = re || scan (i + 1)) in
        scan 0
      in
      if expect_death then check_bool (name ^ " killed at least one worker") true mentions_death;
      Sys.remove out;
      Sys.remove errf)
    scenarios;
  Sys.remove base

(* Worker deaths composed with supervisor SIGKILL and journal resume:
   the crashed distributed run leaves a canonical-prefix journal, and
   the resumed run completes it to bytes identical to an uninterrupted
   in-process journal. *)
let test_chaos_composes_with_journal_resume () =
  let dir = Filename.temp_file "oracle-worker-resume" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p f = Filename.concat dir f in
  check_int "uninterrupted journaled sweep" 0
    (sh
       (Printf.sprintf "%s sweep %S --out %s --journal %s 2>/dev/null" exe e2e_grid
          (p "base.jsonl") (p "base.journal")));
  let crash =
    sh
      (Printf.sprintf
         "%s sweep %S --out %s --journal %s --workers 2 --batch 1 --chaos \
          'kill:worker=1,after=0' --crash-after 3 2>/dev/null"
         exe e2e_grid (p "d.jsonl") (p "d.journal"))
  in
  check_int "supervisor died by SIGKILL" 137 crash;
  check_int "resume completes" 0
    (sh
       (Printf.sprintf "%s sweep %S --out %s --journal %s --workers 2 --batch 1 2>/dev/null" exe
          e2e_grid (p "d2.jsonl") (p "d.journal")));
  check_bool "resumed rows match uninterrupted rows" true
    (read_file (p "d2.jsonl") = read_file (p "base.jsonl"));
  check_bool "journal bytes match uninterrupted journal" true
    (read_file (p "d.journal") = read_file (p "base.journal"));
  check_int "journal verify accepts the composed journal" 0
    (sh (Printf.sprintf "%s journal verify %s >/dev/null 2>/dev/null" exe (p "d.journal")));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let suite =
  [
    Alcotest.test_case "wire codec round-trips every message kind" `Quick test_codec_roundtrips;
    Alcotest.test_case "parse rejects malformed and journal-kind frames" `Quick
      test_parse_rejects_malformed;
    Alcotest.test_case "truncation at every byte boundary is Truncated" `Quick
      test_truncation_every_boundary;
    Alcotest.test_case "Rx reassembles frames across pipe read boundaries" `Quick
      test_rx_interleaved_pipe_reads;
    Alcotest.test_case "garbage mid-stream is a fatal Rx error" `Quick test_rx_garbage_is_fatal;
    Alcotest.test_case "chaos specs round-trip and reject junk" `Quick test_chaos_spec_roundtrip;
    Alcotest.test_case "chaos hook fires by completed-task count" `Quick
      test_chaos_hook_fires_by_count;
    Alcotest.test_case "dispatch degrades to in-process fallback" `Quick
      test_dispatch_degrades_to_fallback;
    Alcotest.test_case "CLI rejects -j 0 and bad ORACLE_SIZE_JOBS" `Slow test_cli_rejects_bad_jobs;
    Alcotest.test_case "CLI gates --chaos behind --workers" `Slow
      test_cli_rejects_chaos_without_workers;
    Alcotest.test_case "bytes identical across workers and chaos schedules" `Slow
      test_chaos_determinism_grid;
    Alcotest.test_case "worker kills compose with crash-after and resume" `Slow
      test_chaos_composes_with_journal_resume;
  ]
