open Netgraph

let test_all_build_and_validate () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:32 ~seed:5 in
      (match Graph.validate g with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: invalid: %s" (Families.name fam) msg);
      Alcotest.(check bool) (Families.name fam ^ " connected") true (Graph.is_connected g);
      Alcotest.(check bool)
        (Families.name fam ^ " size near request")
        true
        (Graph.n g >= 16 && Graph.n g <= 160))
    Families.all

let test_deterministic () =
  List.iter
    (fun fam ->
      let a = Families.build fam ~n:24 ~seed:7 in
      let b = Families.build fam ~n:24 ~seed:7 in
      Alcotest.(check bool) (Families.name fam ^ " deterministic") true (Graph.equal a b))
    Families.all

let test_seed_changes_random_families () =
  let a = Families.build Families.Random_tree ~n:40 ~seed:1 in
  let b = Families.build Families.Random_tree ~n:40 ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false (Graph.equal a b)

let test_name_of_name () =
  List.iter
    (fun fam ->
      Alcotest.(check bool)
        (Families.name fam)
        true
        (Families.of_name (Families.name fam) = Some fam))
    Families.all;
  Alcotest.(check bool) "unknown" true (Families.of_name "nope" = None)

let test_hypercube_rounds_to_power_of_two () =
  let g = Families.build Families.Hypercube ~n:100 ~seed:0 in
  Alcotest.(check int) "rounded up" 128 (Graph.n g)

let test_default_sweep_subset () =
  List.iter
    (fun fam ->
      Alcotest.(check bool) (Families.name fam) true (List.mem fam Families.all))
    Families.default_sweep

let suite =
  [
    Alcotest.test_case "all families build and validate" `Quick test_all_build_and_validate;
    Alcotest.test_case "deterministic in seed" `Quick test_deterministic;
    Alcotest.test_case "seeds matter for random families" `Quick test_seed_changes_random_families;
    Alcotest.test_case "name/of_name roundtrip" `Quick test_name_of_name;
    Alcotest.test_case "hypercube rounds size" `Quick test_hypercube_rounds_to_power_of_two;
    Alcotest.test_case "default sweep is a subset" `Quick test_default_sweep_subset;
  ]
