(* The parallel sweep engine: pool semantics (ordering, error isolation,
   reuse after a raising batch), coordinate-derived seeds, grid spec
   round-trips, worker-local caches, the sink single-writer guard, and
   the headline guarantee — grid results, fault plans and retransmissions
   included, are identical at every job count. *)

module Graph = Netgraph.Graph
module Families = Netgraph.Families
module Sweep = Sim.Sweep

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* {1 Pool} *)

let test_pool_map_order () =
  let expected = Array.init 100 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      let results = Sim.Pool.with_pool ~jobs (fun p -> Sim.Pool.map p (fun i -> i * i) 100) in
      check_int (Printf.sprintf "jobs=%d: all slots filled" jobs) 100 (Array.length results);
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> check_int (Printf.sprintf "jobs=%d slot %d" jobs i) expected.(i) v
          | Error (e, _) ->
            Alcotest.failf "jobs=%d slot %d raised %s" jobs i (Printexc.to_string e))
        results)
    [ 1; 4 ]

let test_pool_error_isolation () =
  Sim.Pool.with_pool ~jobs:3 (fun p ->
      let results =
        Sim.Pool.map p (fun i -> if i = 5 then failwith "task five dies" else i + 1) 12
      in
      Array.iteri
        (fun i r ->
          match (i, r) with
          | 5, Error (Failure msg, _) -> check_string "captured exception" "task five dies" msg
          | 5, Ok _ -> Alcotest.fail "raising task reported Ok"
          | 5, Error (e, _) -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
          | _, Ok v -> check_int (Printf.sprintf "slot %d" i) (i + 1) v
          | _, Error (e, _) -> Alcotest.failf "slot %d raised %s" i (Printexc.to_string e))
        results;
      (* The pool survives the raising batch: the next map is clean. *)
      let again = Sim.Pool.map p (fun i -> 2 * i) 8 in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> check_int (Printf.sprintf "second batch slot %d" i) (2 * i) v
          | Error (e, _) -> Alcotest.failf "second batch raised %s" (Printexc.to_string e))
        again)

let test_pool_rejects_nesting () =
  Sim.Pool.with_pool ~jobs:2 (fun p ->
      let results =
        Sim.Pool.map p
          (fun i -> if i = 0 then Array.length (Sim.Pool.map p (fun j -> j) 3) else i)
          4
      in
      match results.(0) with
      | Error (Invalid_argument _, _) -> ()
      | Error (e, _) -> Alcotest.failf "expected Invalid_argument, got %s" (Printexc.to_string e)
      | Ok _ -> Alcotest.fail "nested map did not raise")

let test_pool_map_local_caches () =
  (* Each worker sees one local value, created lazily and reused; with a
     cache as the local, repeated keys hit. *)
  let results =
    Sim.Pool.with_pool ~jobs:2 (fun p ->
        Sim.Pool.map_local p
          ~local:(fun () -> Sweep.Cache.create ())
          (fun cache i -> Sweep.Cache.find cache (i mod 3) (fun () -> i mod 3))
          30)
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> check_int (Printf.sprintf "slot %d" i) (i mod 3) v
      | Error (e, _) -> Alcotest.failf "slot %d raised %s" i (Printexc.to_string e))
    results

(* {1 Seeds} *)

let test_derive_seed_pinned () =
  (* The derivation is part of the output contract: sweep rows record
     their seeds, so the hash may never change silently.  Pinned values
     were produced by the initial implementation. *)
  check_int "derive_seed 42 [a;b]" 1774689158723077451 (Sweep.derive_seed 42 [ "a"; "b" ]);
  check_int "derive_seed 1 [graph;sparse-random;24;0]" 2388949361269048765
    (Sweep.derive_seed 1 [ "graph"; "sparse-random"; "24"; "0" ])

let test_derive_seed_separates () =
  let s = Sweep.derive_seed 42 in
  check_bool "token split matters" true (s [ "ab"; "c" ] <> s [ "a"; "bc" ]);
  check_bool "order matters" true (s [ "a"; "b" ] <> s [ "b"; "a" ]);
  check_bool "base matters" true (Sweep.derive_seed 1 [ "a" ] <> Sweep.derive_seed 2 [ "a" ]);
  check_bool "non-negative" true (s [ "x" ] >= 0 && Sweep.derive_seed min_int [ "x" ] >= 0)

let small_grid =
  {
    Sweep.protocols = [ "wakeup"; "broadcast" ];
    families = [ Families.Sparse_random ];
    ns = [ 16 ];
    schedulers = [ Sim.Scheduler.Synchronous; Sim.Scheduler.Async_fifo ];
    plans = [ Sim.Fault_plan.none; Sim.Fault_plan.of_string_exn "drop=0.15,seed=9" ];
    reps = 2;
    base_seed = 42;
  }

let test_point_seeds_unique_and_stable () =
  let pts = Sweep.points small_grid in
  check_int "cross product size" 16 (Array.length pts);
  let seeds = Array.to_list (Array.map (fun p -> p.Sweep.seed) pts) in
  check_int "seeds all distinct" (List.length seeds) (List.length (List.sort_uniq compare seeds));
  let pts' = Sweep.points small_grid in
  Array.iteri
    (fun i p -> check_int (Printf.sprintf "point %d seed stable" i) p.Sweep.seed pts'.(i).Sweep.seed)
    pts

let test_graph_seed_shared_across_non_graph_axes () =
  let pts = Sweep.points small_grid in
  (* Points that agree on (family, n, rep) must share a graph seed no
     matter their protocol, scheduler, or plan — that is what makes the
     per-worker graph cache sound. *)
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      let key = (Families.name p.Sweep.family, p.Sweep.n, p.Sweep.rep) in
      let gs = Sweep.graph_seed small_grid p in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.add tbl key gs
      | Some gs' -> check_int "same (family,n,rep) -> same graph seed" gs' gs)
    pts;
  check_int "one graph seed per (family,n,rep)" 2 (Hashtbl.length tbl)

(* {1 Grid specs} *)

let test_spec_roundtrip () =
  let spec =
    "protocols=wakeup;families=sparse-random,cycle;ns=24,64;scheds=sync,async-random(7);plans=none|drop=0.1,seed=7;reps=2;seed=11"
  in
  match Sweep.of_string spec with
  | Error e -> Alcotest.failf "of_string: %s" e
  | Ok g -> (
    match Sweep.of_string (Sweep.to_string g) with
    | Error e -> Alcotest.failf "reparse: %s" e
    | Ok g' ->
      check_string "canonical form round-trips" (Sweep.to_string g) (Sweep.to_string g');
      let p = Sweep.points g and p' = Sweep.points g' in
      check_int "same point count" (Array.length p) (Array.length p');
      Array.iteri
        (fun i pt ->
          check_string "same labels" (Sweep.point_label pt) (Sweep.point_label p'.(i));
          check_int "same seeds" pt.Sweep.seed p'.(i).Sweep.seed)
        p)

let test_spec_defaults_and_errors () =
  (match Sweep.of_string "" with
  | Ok g ->
    check_int "default reps" 1 g.Sweep.reps;
    check_int "default seed" 42 g.Sweep.base_seed;
    check_int "default points" 2 (Array.length (Sweep.points g))
  | Error e -> Alcotest.failf "empty spec: %s" e);
  let rejects s =
    match Sweep.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad spec %S" s
  in
  rejects "families=nosuch";
  rejects "ns=0";
  rejects "scheds=warp";
  rejects "plans=drop=2.5";
  rejects "reps=0";
  rejects "turbo=yes"

(* {1 Caches} *)

let test_cache_counters_and_equality () =
  let c = Sweep.Cache.create () in
  let builds = ref 0 in
  let build () =
    incr builds;
    Families.build Families.Sparse_random ~n:24 ~seed:7
  in
  let g1 = Sweep.Cache.find c ("sparse-random", 24, 7) build in
  let g2 = Sweep.Cache.find c ("sparse-random", 24, 7) build in
  check_int "one build" 1 !builds;
  check_int "one miss" 1 (Sweep.Cache.misses c);
  check_int "one hit" 1 (Sweep.Cache.hits c);
  check_bool "hit is the same graph" true (g1 == g2);
  check_bool "cached equals fresh" true
    (Graph.equal g1 (Families.build Families.Sparse_random ~n:24 ~seed:7))

let test_cached_advice_equals_fresh () =
  let g = Families.build Families.Sparse_random ~n:16 ~seed:3 in
  let c = Sweep.Cache.create () in
  let cached () =
    Sweep.Cache.find c ("wakeup", 3) (fun () -> Fault.Harness.advise Fault.Harness.Wakeup g ~source:0)
  in
  let a1 = cached () in
  let a2 = cached () in
  check_bool "hit is the same advice" true (a1 == a2);
  check_int "cached advice bits = fresh advice bits"
    (Oracles.Advice.size_bits (Fault.Harness.advise Fault.Harness.Wakeup g ~source:0))
    (Oracles.Advice.size_bits a1)

(* {1 The headline guarantee} *)

(* One harness run per point, serialized to the row a sweep would emit;
   with caches warm or cold, at any job count, the rows must be equal. *)
let run_grid ~jobs ~with_caches grid =
  let f (graphs, advice) p =
    let proto =
      match p.Sweep.protocol with
      | "wakeup" -> Fault.Harness.Wakeup
      | "broadcast" -> Fault.Harness.Broadcast
      | s -> Alcotest.failf "unknown protocol %s" s
    in
    let gseed = Sweep.graph_seed grid p in
    let gkey = (Families.name p.Sweep.family, p.Sweep.n, gseed) in
    let build_graph () = Families.build p.Sweep.family ~n:p.Sweep.n ~seed:gseed in
    let g =
      if with_caches then Sweep.Cache.find graphs gkey build_graph else build_graph ()
    in
    let build_advice () = Fault.Harness.advise proto g ~source:0 in
    let raw_advice =
      if with_caches then Sweep.Cache.find advice (p.Sweep.protocol, gkey) build_advice
      else build_advice ()
    in
    let o =
      Fault.Harness.run ~scheduler:p.Sweep.scheduler ~plan:p.Sweep.plan ~retry:1 ~raw_advice
        proto g ~source:0
    in
    let recov = Obs.Counting.of_events o.Fault.Harness.events in
    Printf.sprintf "%s sent=%d faults=%d retransmits=%d verdict=%s" (Sweep.point_label p)
      o.Fault.Harness.result.Sim.Runner.stats.Sim.Runner.sent
      o.Fault.Harness.result.Sim.Runner.stats.Sim.Runner.faults recov.Obs.Counting.retransmits
      (Fault.Verdict.to_string o.Fault.Harness.verdict)
  in
  Array.map
    (function Ok row -> row | Error e -> Alcotest.failf "point raised: %s" e)
    (Sweep.run ~jobs
       ~local:(fun () -> (Sweep.Cache.create (), Sweep.Cache.create ()))
       ~f grid)

let test_grid_identical_across_jobs () =
  let reference = run_grid ~jobs:1 ~with_caches:true small_grid in
  check_int "16 rows" 16 (Array.length reference);
  List.iter
    (fun jobs ->
      let rows = run_grid ~jobs ~with_caches:true small_grid in
      Array.iteri
        (fun i row -> check_string (Printf.sprintf "jobs=%d row %d" jobs i) reference.(i) row)
        rows)
    [ 2; 7 ]

let test_grid_identical_with_cold_caches () =
  (* The cache must be invisible: rebuilding everything from coordinate
     seeds yields the same rows as the warm path. *)
  let warm = run_grid ~jobs:2 ~with_caches:true small_grid in
  let cold = run_grid ~jobs:2 ~with_caches:false small_grid in
  Array.iteri (fun i row -> check_string (Printf.sprintf "row %d" i) warm.(i) row) cold

let test_sweep_map_error_slot () =
  let results =
    Sweep.map ~jobs:2
      ~local:(fun () -> ())
      ~f:(fun () i x -> if i = 2 then failwith "boom" else x * 10)
      [| 1; 2; 3; 4 |]
  in
  (match results.(2) with
  | Error msg -> check_bool "message captured" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "raising task reported Ok");
  List.iter
    (fun i ->
      match results.(i) with
      | Ok v -> check_int (Printf.sprintf "slot %d" i) ((i + 1) * 10) v
      | Error e -> Alcotest.failf "slot %d: %s" i e)
    [ 0; 1; 3 ]

(* {1 Sinks are single-writer} *)

let test_sink_rejects_cross_domain_emit () =
  let sink, collected = Obs.Sink.collect () in
  let ev = { Obs.Event.seq = 0; round = 0; kind = Obs.Event.Wake 0 } in
  let raised =
    Domain.join
      (Domain.spawn (fun () ->
           try
             Obs.Sink.emit sink ev;
             false
           with Failure _ -> true))
  in
  check_bool "cross-domain emit raises" true raised;
  Obs.Sink.emit sink ev;
  check_int "owning domain still emits" 1 (List.length (collected ()))

let suite =
  [
    Alcotest.test_case "pool: map preserves index order" `Quick test_pool_map_order;
    Alcotest.test_case "pool: raising task is isolated, pool survives" `Quick
      test_pool_error_isolation;
    Alcotest.test_case "pool: nested map rejected" `Quick test_pool_rejects_nesting;
    Alcotest.test_case "pool: per-worker locals" `Quick test_pool_map_local_caches;
    Alcotest.test_case "seeds: pinned derivation" `Quick test_derive_seed_pinned;
    Alcotest.test_case "seeds: tokens, order, base all separate" `Quick test_derive_seed_separates;
    Alcotest.test_case "seeds: unique and stable per point" `Quick
      test_point_seeds_unique_and_stable;
    Alcotest.test_case "seeds: graph seed shared across protocol/sched/plan" `Quick
      test_graph_seed_shared_across_non_graph_axes;
    Alcotest.test_case "spec: round-trip" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec: defaults and rejections" `Quick test_spec_defaults_and_errors;
    Alcotest.test_case "cache: counters and structural equality" `Quick
      test_cache_counters_and_equality;
    Alcotest.test_case "cache: advice hit equals fresh" `Quick test_cached_advice_equals_fresh;
    Alcotest.test_case "grid: rows identical at jobs 1/2/7" `Quick test_grid_identical_across_jobs;
    Alcotest.test_case "grid: caches invisible in output" `Quick
      test_grid_identical_with_cold_caches;
    Alcotest.test_case "map: error lands in its slot" `Quick test_sweep_map_error_slot;
    Alcotest.test_case "sink: cross-domain emit rejected" `Quick
      test_sink_rejects_cross_domain_emit;
  ]
