open Oracle_core
module Graph = Netgraph.Graph
module LB = Lower_bound

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 G_{n,S}} *)

let test_wakeup_hard_graph_shape () =
  let n = 12 in
  let g, chosen = LB.wakeup_hard_graph ~n ~seed:5 in
  check_int "2n nodes" (2 * n) (Graph.n g);
  check_int "n chosen edges" n (List.length chosen);
  (match Graph.validate g with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid: %s" msg);
  check_bool "connected" true (Graph.is_connected g);
  check_int "source label 1" 1 (Graph.label g 0);
  (* Hidden nodes have labels n+1..2n and degree 2. *)
  for v = n to (2 * n) - 1 do
    check_int (Printf.sprintf "label %d" v) (v + 1) (Graph.label g v);
    check_int (Printf.sprintf "degree %d" v) 2 (Graph.degree g v)
  done

let test_wakeup_hard_graph_deterministic () =
  let a, _ = LB.wakeup_hard_graph ~n:10 ~seed:7 in
  let b, _ = LB.wakeup_hard_graph ~n:10 ~seed:7 in
  let c, _ = LB.wakeup_hard_graph ~n:10 ~seed:8 in
  check_bool "same seed" true (Graph.equal a b);
  check_bool "different seed" false (Graph.equal a c)

let test_wakeup_experiment_row () =
  (* n must be large enough for the counting threshold to be positive
     (below ~n = 64 the exact finite-n count is vacuous). *)
  let p = LB.wakeup_experiment ~n:128 ~seed:1 in
  check_int "informed uses 2n-1" 255 p.LB.informed_messages;
  check_bool "flooding pays more" true (p.LB.oblivious_messages > p.LB.informed_messages);
  check_bool "informed advice within budget" true
    (p.LB.informed_bits <= Bounds.wakeup_advice_upper ~n:256);
  check_bool "threshold positive" true (p.LB.threshold_bits > 0);
  check_bool "threshold below the paper's 1/2" true (p.LB.threshold_ratio < 0.5)

let test_threshold_growth () =
  (* The Θ(n log n) threshold: superlinear growth in n and a normalised
     ratio that increases towards 1/2. *)
  let q n = LB.min_advice_for_linear_wakeup ~n ~budget_factor:3.0 in
  let q256 = q 256 and q512 = q 512 and q1024 = q 1024 in
  check_bool "superlinear 256->512" true (q512 > 2 * q256);
  check_bool "superlinear 512->1024" true (q1024 > 2 * q512);
  let ratio n qv = float_of_int qv /. (float_of_int (2 * n) *. Float.log2 (float_of_int (2 * n))) in
  check_bool "normalised ratio increases" true
    (ratio 256 q256 < ratio 512 q512 && ratio 512 q512 < ratio 1024 q1024);
  check_bool "stays below 1/2" true (ratio 1024 q1024 < 0.5)

(* {1 G_{n,S,C}} *)

let test_broadcast_hard_graph_shape () =
  let n, k = (16, 4) in
  let g, chosen, missing = LB.broadcast_hard_graph ~n ~k ~seed:3 in
  check_int "2n nodes" (2 * n) (Graph.n g);
  check_int "n/k cliques" (n / k) (List.length chosen);
  check_int "one missing pair per clique" (n / k) (List.length missing);
  (match Graph.validate g with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid: %s" msg);
  check_bool "connected" true (Graph.is_connected g);
  for v = n to (2 * n) - 1 do
    check_int (Printf.sprintf "clique degree %d" v) (k - 1) (Graph.degree g v)
  done

let test_broadcast_hard_graph_rejects () =
  (match LB.broadcast_hard_graph ~n:10 ~k:4 ~seed:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k must divide n");
  match LB.broadcast_hard_graph ~n:10 ~k:2 ~seed:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k >= 3"

let test_broadcast_experiment_row () =
  let p = LB.broadcast_experiment ~n:24 ~k:4 ~seed:1 in
  check_bool "advised linear" true (p.LB.advised_messages < 3 * 2 * 24);
  check_bool "advised within 8(2n)" true (p.LB.advised_bits <= 8 * 2 * 24);
  check_bool "starved completes (flooding)" true p.LB.starved_completes;
  check_bool "starved pays the clique price" true
    (float_of_int p.LB.starved_messages >= p.LB.clique_bound);
  check_bool "gap is real" true (p.LB.starved_messages > 2 * p.LB.advised_messages)

let test_clique_price_grows_with_k () =
  (* Claim 3.3's shape: at fixed 2n nodes, the advice-free cost grows with
     k while the advised cost stays flat. *)
  let row k = LB.broadcast_experiment ~n:48 ~k ~seed:2 in
  let r4 = row 4 and r8 = row 8 and r12 = row 12 in
  check_bool "starved grows" true
    (r4.LB.starved_messages < r8.LB.starved_messages
    && r8.LB.starved_messages < r12.LB.starved_messages);
  check_bool "advised flat" true
    (abs (r4.LB.advised_messages - r12.LB.advised_messages) < 2 * 48)

(* {1 Starvation sweep} *)

let test_starvation_sweep () =
  let g, _, _ = LB.broadcast_hard_graph ~n:16 ~k:4 ~seed:4 in
  let full = Broadcast.run g ~source:0 in
  let budgets = [ 0; 4; full.Broadcast.advice_bits ] in
  match LB.starvation_sweep g ~source:0 ~budgets with
  | [ zero; tiny; full_budget ] ->
    check_bool "zero budget fails" false zero.LB.sv_completed;
    check_int "zero budget sends nothing" 0 zero.LB.sv_messages;
    check_bool "tiny budget incomplete" true (tiny.LB.sv_informed < Graph.n g);
    check_bool "full budget completes" true full_budget.LB.sv_completed;
    check_int "budgets echoed" 0 zero.LB.sv_budget
  | _ -> Alcotest.fail "wrong row count"

let test_starvation_monotone_endpoints () =
  let g = Netgraph.Gen.complete 16 in
  let full = Broadcast.run g ~source:0 in
  let rows =
    LB.starvation_sweep g ~source:0
      ~budgets:[ 0; full.Broadcast.advice_bits / 4; full.Broadcast.advice_bits ]
  in
  let informed = List.map (fun r -> r.LB.sv_informed) rows in
  (match (informed, List.rev informed) with
  | first :: _, last :: _ ->
    check_bool "more budget, at least as many informed" true (last >= first)
  | _ -> Alcotest.fail "empty sweep");
  check_bool "full budget completes" true (List.nth rows 2).LB.sv_completed

let suite =
  [
    Alcotest.test_case "G_{n,S} shape" `Quick test_wakeup_hard_graph_shape;
    Alcotest.test_case "G_{n,S} deterministic" `Quick test_wakeup_hard_graph_deterministic;
    Alcotest.test_case "wakeup experiment row" `Quick test_wakeup_experiment_row;
    Alcotest.test_case "Θ(n log n) threshold growth" `Quick test_threshold_growth;
    Alcotest.test_case "G_{n,S,C} shape" `Quick test_broadcast_hard_graph_shape;
    Alcotest.test_case "G_{n,S,C} input validation" `Quick test_broadcast_hard_graph_rejects;
    Alcotest.test_case "broadcast experiment row" `Quick test_broadcast_experiment_row;
    Alcotest.test_case "clique price grows with k" `Quick test_clique_price_grows_with_k;
    Alcotest.test_case "starvation sweep" `Quick test_starvation_sweep;
    Alcotest.test_case "starvation endpoints" `Quick test_starvation_monotone_endpoints;
  ]

let test_remark_family_shape () =
  let n, c = (10, 3) in
  let g, chosen = LB.wakeup_hard_graph_c ~n ~c ~seed:229 in
  check_int "(1+c)n nodes" ((1 + c) * n) (Graph.n g);
  check_int "cn chosen" (c * n) (List.length chosen);
  check_bool "valid" true (Graph.validate g = Ok ());
  check_bool "connected" true (Graph.is_connected g);
  (* A wakeup with full advice still spends exactly N-1 messages there. *)
  let o = Oracle_core.Wakeup.run g ~source:0 in
  check_int "N-1 messages" (Graph.n g - 1) o.Oracle_core.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent

let test_remark_threshold_ordering () =
  (* At a fixed n the normalized threshold increases with c, matching the
     c/(c+1) ordering of the Remark. *)
  let ratio c =
    let n = 2048 in
    let q = LB.min_advice_for_linear_wakeup_c ~n ~c ~budget_factor:3.0 in
    let nodes = (1 + c) * n in
    float_of_int q /. (float_of_int nodes *. Float.log2 (float_of_int nodes))
  in
  let r1 = ratio 1 and r2 = ratio 2 and r3 = ratio 3 in
  check_bool "c=1 < c=2" true (r1 < r2);
  check_bool "c=2 < c=3" true (r2 < r3);
  check_bool "all below their limits" true (r1 < 0.5 && r2 < 2.0 /. 3.0 && r3 < 0.75)

let test_remark_consistent_with_base_case () =
  (* c = 1 must agree with the original pipeline. *)
  let n = 512 in
  check_int "same threshold"
    (LB.min_advice_for_linear_wakeup ~n ~budget_factor:3.0)
    (LB.min_advice_for_linear_wakeup_c ~n ~c:1 ~budget_factor:3.0)

let suite =
  suite
  @ [
      Alcotest.test_case "Remark: cn-subdivided family" `Quick test_remark_family_shape;
      Alcotest.test_case "Remark: threshold ordering in c" `Quick
        test_remark_threshold_ordering;
      Alcotest.test_case "Remark: c=1 is the base case" `Quick
        test_remark_consistent_with_base_case;
    ]
