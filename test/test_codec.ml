open Netgraph

let test_roundtrip_families () =
  List.iter
    (fun (name, g) ->
      let decoded = Codec.decode (Bitstring.Bitbuf.reader (Codec.encode g)) in
      Alcotest.(check bool) (name ^ " roundtrips") true (Graph.equal g decoded))
    [
      ("path", Gen.path 7);
      ("single node", Gen.path 1);
      ("complete", Gen.complete 9);
      ("grid", Gen.grid ~rows:3 ~cols:4);
      ("hypercube", Gen.hypercube ~dim:3);
      ("random", Gen.random_connected ~n:20 ~p:0.3 (Random.State.make [| 8 |]));
    ]

let test_roundtrip_custom_labels () =
  let g =
    Graph.make ~labels:[| 7; 0; 42 |] ~n:3
      [
        { Graph.u = 0; pu = 0; v = 1; pv = 0 };
        { Graph.u = 1; pu = 1; v = 2; pv = 0 };
      ]
  in
  let decoded = Codec.decode (Bitstring.Bitbuf.reader (Codec.encode g)) in
  Alcotest.(check bool) "labels preserved" true (Graph.equal g decoded)

let test_rejects_negative_labels () =
  let g = Graph.make ~labels:[| -1; 2 |] ~n:2 [ { Graph.u = 0; pu = 0; v = 1; pv = 0 } ] in
  match Codec.encode g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative label must be rejected"

let test_encoded_bits () =
  let g = Gen.complete 8 in
  Alcotest.(check int)
    "encoded_bits = length of encode"
    (Bitstring.Bitbuf.length (Codec.encode g))
    (Codec.encoded_bits g)

let test_decode_garbage () =
  match Codec.decode (Bitstring.Bitbuf.reader (Bitstring.Bitbuf.of_string "000000001")) with
  | exception (Invalid_argument _ | Bitstring.Bitbuf.End_of_bits) -> ()
  | _ -> Alcotest.fail "garbage must not decode"

let test_size_grows_with_density () =
  let sparse = Codec.encoded_bits (Gen.path 32) in
  let dense = Codec.encoded_bits (Gen.complete 32) in
  Alcotest.(check bool) "denser graph is bigger" true (dense > sparse)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip (random graphs)" ~count:40
    QCheck.(pair (int_range 1 40) (int_range 0 999))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let g = if n = 1 then Gen.path 1 else Gen.random_connected ~n ~p:0.25 st in
      Graph.equal g (Codec.decode (Bitstring.Bitbuf.reader (Codec.encode g))))

let suite =
  [
    Alcotest.test_case "roundtrip across families" `Quick test_roundtrip_families;
    Alcotest.test_case "roundtrip with custom labels" `Quick test_roundtrip_custom_labels;
    Alcotest.test_case "rejects negative labels" `Quick test_rejects_negative_labels;
    Alcotest.test_case "encoded_bits" `Quick test_encoded_bits;
    Alcotest.test_case "garbage does not decode" `Quick test_decode_garbage;
    Alcotest.test_case "size grows with density" `Quick test_size_grows_with_density;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
