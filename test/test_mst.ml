module Graph = Netgraph.Graph
module Mst = Netgraph.Mst
module Families = Netgraph.Families

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Centralized reference} *)

let test_kruskal_is_spanning_tree () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:32 ~seed:173 in
      let mst = Mst.kruskal g in
      check_bool (Families.name fam) true (Mst.is_spanning_tree g mst))
    Families.all

let test_kruskal_on_tree_is_identity () =
  let g = Netgraph.Gen.balanced_tree ~arity:2 ~depth:4 in
  let mst = Mst.kruskal g in
  check_int "all edges kept" (Graph.m g) (List.length mst)

let test_kruskal_minimality_vs_random_trees () =
  (* No spanning tree weighs less than the MST. *)
  let st = Random.State.make [| 179 |] in
  let g = Netgraph.Gen.random_connected ~n:24 ~p:0.3 st in
  let mst_weight = Mst.weight g (Mst.kruskal g) in
  for _ = 1 to 20 do
    let t = Netgraph.Spanning.random g ~root:0 st in
    let w = Mst.weight g (Netgraph.Spanning.edges t) in
    check_bool (Printf.sprintf "%d >= %d" w mst_weight) true (w >= mst_weight)
  done

let test_edge_order_total () =
  let g = Netgraph.Gen.complete 6 in
  let edges = Graph.edges g in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Mst.edge_order g a b and ba = Mst.edge_order g b a in
          check_bool "antisymmetric" true (compare ab 0 = compare 0 ba);
          if ab = 0 then check_bool "equal only reflexively" true (a = b))
        edges)
    edges

(* {1 Synchronous model} *)

let test_sync_model_round_delivery () =
  (* A relay chain: node 0 pings right once; each relay forwards right;
     rounds = n-1 hops + the final silent round. *)
  let g = Netgraph.Gen.path 5 in
  let factory ~n_hint:_ ~advice:_ ~id ~degree =
    let fired = ref false in
    let on_round ~inbox =
      if id = 1 && not !fired then begin
        fired := true;
        [ (Bitstring.Bitbuf.of_string "1", 0) ]
      end
      else
        List.filter_map
          (fun (_, _) ->
            if degree > 1 && not !fired then begin
              fired := true;
              Some (Bitstring.Bitbuf.of_string "1", 1)
            end
            else None)
          inbox
    in
    { Syncnet.Model.on_round; finished = (fun () -> true) }
  in
  let r = Syncnet.Model.run ~advice:(fun _ -> Bitstring.Bitbuf.create ()) g factory in
  check_int "messages" 4 r.Syncnet.Model.messages;
  check_bool "finishes" true r.Syncnet.Model.all_finished

let test_sync_model_rejects_bad_port () =
  let g = Netgraph.Gen.path 2 in
  let bad ~n_hint:_ ~advice:_ ~id:_ ~degree:_ =
    {
      Syncnet.Model.on_round = (fun ~inbox:_ -> [ (Bitstring.Bitbuf.create (), 9) ]);
      finished = (fun () -> false);
    }
  in
  match Syncnet.Model.run ~advice:(fun _ -> Bitstring.Bitbuf.create ()) g bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected port error"

let test_sync_model_round_budget () =
  let g = Netgraph.Gen.path 2 in
  let chatty ~n_hint:_ ~advice:_ ~id:_ ~degree:_ =
    {
      Syncnet.Model.on_round = (fun ~inbox:_ -> [ (Bitstring.Bitbuf.create (), 0) ]);
      finished = (fun () -> false);
    }
  in
  let r = Syncnet.Model.run ~max_rounds:25 ~advice:(fun _ -> Bitstring.Bitbuf.create ()) g chatty in
  check_int "budget" 25 r.Syncnet.Model.rounds;
  check_bool "not finished" false r.Syncnet.Model.all_finished

(* {1 Distributed Borůvka} *)

let test_boruvka_matches_kruskal_families () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:24 ~seed:181 in
      let o = Syncnet.Boruvka.distributed_build g in
      check_bool (Families.name fam ^ " matches Kruskal") true o.Syncnet.Boruvka.matches_reference;
      check_int (Families.name fam ^ " no advice") 0 o.Syncnet.Boruvka.advice_bits)
    Families.all

let test_boruvka_single_node () =
  let g = Netgraph.Gen.path 1 in
  let o = Syncnet.Boruvka.distributed_build g in
  check_bool "trivially done" true o.Syncnet.Boruvka.matches_reference;
  match o.Syncnet.Boruvka.edges with
  | Some [] -> ()
  | Some _ | None -> Alcotest.fail "expected the empty tree"

let test_boruvka_two_nodes () =
  let g = Netgraph.Gen.path 2 in
  let o = Syncnet.Boruvka.distributed_build g in
  check_bool "ok" true o.Syncnet.Boruvka.matches_reference

let test_boruvka_message_complexity () =
  (* O(m log n): each phase costs O(m) and there are <= lg n + 1 phases. *)
  let g = Families.build Families.Dense_random ~n:48 ~seed:191 in
  let o = Syncnet.Boruvka.distributed_build g in
  check_bool "ok" true o.Syncnet.Boruvka.matches_reference;
  let m = Graph.m g and n = Graph.n g in
  let phases = Bitstring.Binary.ceil_log2 n + 2 in
  check_bool "message bound" true
    (o.Syncnet.Boruvka.result.Syncnet.Model.messages <= 4 * m * phases)

let test_boruvka_permuted_labels () =
  (* Leadership depends on labels: any labeling must still produce the
     (relabeled) unique MST. *)
  let st = Random.State.make [| 193 |] in
  let g =
    Netgraph.Transform.permute_labels
      (Netgraph.Gen.random_connected ~n:30 ~p:0.2 st)
      st
  in
  let o = Syncnet.Boruvka.distributed_build g in
  check_bool "ok" true o.Syncnet.Boruvka.matches_reference

let test_advised_build () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:24 ~seed:197 in
      let o = Syncnet.Boruvka.advised_build g in
      check_bool (Families.name fam ^ " matches") true o.Syncnet.Boruvka.matches_reference;
      check_int (Families.name fam ^ " zero messages") 0
        o.Syncnet.Boruvka.result.Syncnet.Model.messages;
      check_bool (Families.name fam ^ " advice paid") true (o.Syncnet.Boruvka.advice_bits > 0))
    Families.all

let test_mst_oracle_size_linear_ish () =
  (* The MST-ports oracle is 2*sum(#2(port)) <= O(n log max-degree). *)
  let g = Families.build Families.Complete ~n:64 ~seed:0 in
  let o = Syncnet.Boruvka.advised_build g in
  check_bool "within 4 n lg n" true
    (o.Syncnet.Boruvka.advice_bits <= 4 * 64 * Bitstring.Binary.ceil_log2 64)

let qcheck_boruvka =
  QCheck.Test.make ~name:"distributed Boruvka = Kruskal on random graphs" ~count:25
    QCheck.(pair (int_range 2 36) (int_range 0 999))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let g = Netgraph.Gen.random_connected ~n ~p:0.25 st in
      (Syncnet.Boruvka.distributed_build g).Syncnet.Boruvka.matches_reference)

let suite =
  [
    Alcotest.test_case "kruskal spans" `Quick test_kruskal_is_spanning_tree;
    Alcotest.test_case "kruskal on a tree" `Quick test_kruskal_on_tree_is_identity;
    Alcotest.test_case "kruskal minimality" `Quick test_kruskal_minimality_vs_random_trees;
    Alcotest.test_case "edge order is total" `Quick test_edge_order_total;
    Alcotest.test_case "sync model delivery" `Quick test_sync_model_round_delivery;
    Alcotest.test_case "sync model port check" `Quick test_sync_model_rejects_bad_port;
    Alcotest.test_case "sync model round budget" `Quick test_sync_model_round_budget;
    Alcotest.test_case "Boruvka = Kruskal on families" `Quick
      test_boruvka_matches_kruskal_families;
    Alcotest.test_case "Boruvka: single node" `Quick test_boruvka_single_node;
    Alcotest.test_case "Boruvka: two nodes" `Quick test_boruvka_two_nodes;
    Alcotest.test_case "Boruvka: O(m log n) messages" `Quick test_boruvka_message_complexity;
    Alcotest.test_case "Boruvka: permuted labels" `Quick test_boruvka_permuted_labels;
    Alcotest.test_case "advised build: zero messages" `Quick test_advised_build;
    Alcotest.test_case "MST oracle size" `Quick test_mst_oracle_size_linear_ish;
    QCheck_alcotest.to_alcotest qcheck_boruvka;
  ]
