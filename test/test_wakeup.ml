open Oracle_core
module Graph = Netgraph.Graph
module Families = Netgraph.Families

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let family_graphs n =
  List.map (fun fam -> (Families.name fam, Families.build fam ~n ~seed:17)) Families.all

(* Theorem 2.1's two claims: exactly n-1 messages, everyone informed. *)
let test_exact_messages_all_families () =
  List.iter
    (fun (name, g) ->
      let o = Wakeup.run g ~source:0 in
      check_bool (name ^ " informed") true o.Wakeup.result.Sim.Runner.all_informed;
      check_int (name ^ " messages") (Graph.n g - 1) o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent;
      check_bool (name ^ " tree ok") true o.Wakeup.tree_ok)
    (family_graphs 48)

let test_all_schedulers () =
  let g = Families.build Families.Sparse_random ~n:40 ~seed:3 in
  List.iter
    (fun sched ->
      let o = Wakeup.run ~scheduler:sched g ~source:0 in
      check_bool (Sim.Scheduler.name sched) true o.Wakeup.result.Sim.Runner.all_informed;
      check_int (Sim.Scheduler.name sched) (Graph.n g - 1)
        o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent)
    Sim.Scheduler.default_suite

let test_advice_within_bound () =
  List.iter
    (fun (name, g) ->
      let o = Wakeup.run g ~source:0 in
      let bound = Bounds.wakeup_advice_upper ~n:(Graph.n g) in
      check_bool
        (Printf.sprintf "%s: %d <= %d" name o.Wakeup.advice_bits bound)
        true (o.Wakeup.advice_bits <= bound))
    (family_graphs 64)

let test_nonzero_source () =
  let g = Families.build Families.Grid ~n:36 ~seed:5 in
  let source = Graph.n g / 2 in
  let o = Wakeup.run g ~source in
  check_bool "informed" true o.Wakeup.result.Sim.Runner.all_informed;
  check_int "messages" (Graph.n g - 1) o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent

let test_single_node () =
  let g = Netgraph.Gen.path 1 in
  let o = Wakeup.run g ~source:0 in
  check_bool "informed" true o.Wakeup.result.Sim.Runner.all_informed;
  check_int "zero messages" 0 o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent;
  check_int "zero advice" 0 o.Wakeup.advice_bits

let test_two_nodes () =
  let g = Netgraph.Gen.path 2 in
  let o = Wakeup.run g ~source:1 in
  check_bool "informed" true o.Wakeup.result.Sim.Runner.all_informed;
  check_int "one message" 1 o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent

let test_encodings_roundtrip () =
  let ports = [ 0; 5; 3; 12 ] in
  List.iter
    (fun enc ->
      let buf = Bitstring.Bitbuf.create () in
      (* encode via the oracle path: use a star graph where node 0's
         children ports are exactly 0..n-2. *)
      ignore buf;
      let g = Netgraph.Gen.star 6 in
      let o = Wakeup.oracle ~encoding:enc () in
      let advice = o.Oracles.Oracle.advise g ~source:0 in
      let decoded = Wakeup.decode_ports enc (Oracles.Advice.get advice 0) in
      Alcotest.(check (list int))
        (Wakeup.encoding_name enc ^ " decodes center")
        [ 0; 1; 2; 3; 4 ] (List.sort compare decoded))
    [ Wakeup.Paper; Wakeup.Paper_minimal; Wakeup.Gamma ];
  ignore ports

let test_encodings_all_work () =
  let g = Families.build Families.Dense_random ~n:32 ~seed:9 in
  List.iter
    (fun enc ->
      let o = Wakeup.run ~encoding:enc g ~source:0 in
      check_bool (Wakeup.encoding_name enc) true o.Wakeup.result.Sim.Runner.all_informed;
      check_int (Wakeup.encoding_name enc) (Graph.n g - 1)
        o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent)
    [ Wakeup.Paper; Wakeup.Paper_minimal; Wakeup.Gamma ]

let test_minimal_never_larger () =
  List.iter
    (fun (name, g) ->
      let paper = Wakeup.run ~encoding:Wakeup.Paper g ~source:0 in
      let minimal = Wakeup.run ~encoding:Wakeup.Paper_minimal g ~source:0 in
      check_bool name true (minimal.Wakeup.advice_bits <= paper.Wakeup.advice_bits))
    (family_graphs 40)

let test_alternate_trees () =
  let g = Families.build Families.Dense_random ~n:36 ~seed:11 in
  let st = Random.State.make [| 13 |] in
  List.iter
    (fun (name, tree) ->
      let o = Wakeup.run ~tree g ~source:0 in
      check_bool (name ^ " informed") true o.Wakeup.result.Sim.Runner.all_informed;
      check_int (name ^ " messages") (Graph.n g - 1)
        o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent)
    [
      ("dfs", fun g ~root -> Netgraph.Spanning.dfs g ~root);
      ("light", fun g ~root -> Netgraph.Spanning.light g ~root);
      ("random", fun g ~root -> Netgraph.Spanning.random g ~root st);
    ]

let test_scheme_is_a_wakeup_scheme () =
  (* No node transmits before being woken; check_wakeup inside run would
     raise, and the explicit silent-network check passes. *)
  let g = Families.build Families.Torus ~n:25 ~seed:2 in
  let o = Wakeup.oracle () in
  let advice = Oracles.Oracle.advice_fun o g ~source:0 in
  check_bool "silent before wakeup" true
    (Sim.Runner.run_silent_network_check ~advice g ~source:0 (Wakeup.scheme ()))

let test_label_independence () =
  (* The scheme is anonymous: permuting labels must not change the message
     count or outcome. *)
  let g = Families.build Families.Sparse_random ~n:32 ~seed:19 in
  let permuted = Netgraph.Transform.permute_labels g (Random.State.make [| 23 |]) in
  let a = Wakeup.run g ~source:0 in
  let b = Wakeup.run permuted ~source:0 in
  check_int "same messages" a.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent
    b.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent;
  check_bool "both informed" true
    (a.Wakeup.result.Sim.Runner.all_informed && b.Wakeup.result.Sim.Runner.all_informed)

let test_one_bit_messages () =
  (* Theorem 2.1 holds with bounded-size messages: everything on the wire
     is the 1-bit source message. *)
  let g = Families.build Families.Hypercube ~n:32 ~seed:0 in
  let o = Wakeup.run g ~source:0 in
  check_int "bits = messages" o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent
    o.Wakeup.result.Sim.Runner.stats.Sim.Runner.bits_on_wire

let qcheck_wakeup_random_graphs =
  QCheck.Test.make ~name:"wakeup: n-1 messages on random graphs" ~count:50
    QCheck.(triple (int_range 2 48) (int_range 0 999) (int_range 0 3))
    (fun (n, seed, sched_idx) ->
      let st = Random.State.make [| n; seed |] in
      let g = Netgraph.Gen.random_connected ~n ~p:0.2 st in
      let scheduler = List.nth Sim.Scheduler.default_suite sched_idx in
      let o = Wakeup.run ~scheduler g ~source:(seed mod n) in
      o.Wakeup.result.Sim.Runner.all_informed
      && o.Wakeup.result.Sim.Runner.stats.Sim.Runner.sent = n - 1
      && o.Wakeup.advice_bits <= Bounds.wakeup_advice_upper ~n)

let suite =
  [
    Alcotest.test_case "n-1 messages on every family" `Quick test_exact_messages_all_families;
    Alcotest.test_case "all schedulers" `Quick test_all_schedulers;
    Alcotest.test_case "advice within Theorem 2.1 bound" `Quick test_advice_within_bound;
    Alcotest.test_case "non-zero source" `Quick test_nonzero_source;
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "two nodes" `Quick test_two_nodes;
    Alcotest.test_case "encodings decode children" `Quick test_encodings_roundtrip;
    Alcotest.test_case "all encodings wake everyone" `Quick test_encodings_all_work;
    Alcotest.test_case "minimal width never larger" `Quick test_minimal_never_larger;
    Alcotest.test_case "alternate spanning trees" `Quick test_alternate_trees;
    Alcotest.test_case "respects the wakeup restriction" `Quick test_scheme_is_a_wakeup_scheme;
    Alcotest.test_case "label independence (anonymity)" `Quick test_label_independence;
    Alcotest.test_case "1-bit messages suffice" `Quick test_one_bit_messages;
    QCheck_alcotest.to_alcotest qcheck_wakeup_random_graphs;
  ]
