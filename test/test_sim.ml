let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let no_advice _v = Bitstring.Bitbuf.create ()

(* {1 Message} *)

let test_message_sizes () =
  check_int "source" 1 (Sim.Message.size_bits Sim.Message.Source);
  check_int "hello" 1 (Sim.Message.size_bits Sim.Message.Hello);
  check_int "control" 5
    (Sim.Message.size_bits (Sim.Message.Control (Bitstring.Bitbuf.of_string "10110")));
  check_int "empty control still 1" 1
    (Sim.Message.size_bits (Sim.Message.Control (Bitstring.Bitbuf.create ())))

let test_message_equal () =
  check_bool "source" true (Sim.Message.equal Sim.Message.Source Sim.Message.Source);
  check_bool "mixed" false (Sim.Message.equal Sim.Message.Source Sim.Message.Hello);
  check_bool "controls" true
    (Sim.Message.equal
       (Sim.Message.Control (Bitstring.Bitbuf.of_string "11"))
       (Sim.Message.Control (Bitstring.Bitbuf.of_string "11")));
  check_bool "is_source" true (Sim.Message.is_source Sim.Message.Source);
  check_bool "hello is not source" false (Sim.Message.is_source Sim.Message.Hello)

(* {1 History} *)

let test_history () =
  let static =
    { Sim.History.advice = Bitstring.Bitbuf.create (); is_source = false; id = 3; degree = 2 }
  in
  let h = Sim.History.initial static in
  check_int "empty" 0 (Sim.History.received_count h);
  let h = Sim.History.receive h Sim.Message.Hello ~port:1 in
  let h = Sim.History.receive h Sim.Message.Source ~port:0 in
  check_int "two" 2 (Sim.History.received_count h);
  (* Oldest first. *)
  match h.Sim.History.received with
  | [ (m1, p1); (m2, p2) ] ->
    check_bool "first hello" true (Sim.Message.equal m1 Sim.Message.Hello);
    check_int "port 1" 1 p1;
    check_bool "then source" true (Sim.Message.equal m2 Sim.Message.Source);
    check_int "port 0" 0 p2
  | _ -> Alcotest.fail "wrong history shape"

(* {1 Scheme adapters} *)

let test_of_pure_sees_growing_history () =
  (* A pure scheme that answers once per received message, echoing the
     count of messages so far on port 0. *)
  let lengths = ref [] in
  let pure h =
    lengths := Sim.History.received_count h :: !lengths;
    []
  in
  let node =
    Sim.Scheme.of_pure pure
      { Sim.History.advice = Bitstring.Bitbuf.create (); is_source = true; id = 1; degree = 1 }
  in
  ignore (node.Sim.Scheme.on_start ());
  ignore (node.Sim.Scheme.on_receive Sim.Message.Hello ~port:0);
  ignore (node.Sim.Scheme.on_receive Sim.Message.Hello ~port:0);
  Alcotest.(check (list int)) "histories grow" [ 2; 1; 0 ] !lengths

let test_check_wakeup_catches_violation () =
  let chatty _static =
    {
      Sim.Scheme.on_start = (fun () -> [ (Sim.Message.Hello, 0) ]);
      on_receive = (fun _ ~port:_ -> []);
    }
  in
  let static =
    { Sim.History.advice = Bitstring.Bitbuf.create (); is_source = false; id = 2; degree = 1 }
  in
  let node = Sim.Scheme.check_wakeup chatty static in
  (match node.Sim.Scheme.on_start () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected wakeup violation");
  (* The source is allowed to talk. *)
  let node_src =
    Sim.Scheme.check_wakeup chatty { static with Sim.History.is_source = true }
  in
  check_int "source may send" 1 (List.length (node_src.Sim.Scheme.on_start ()))

(* {1 Flooding} *)

let test_flooding_path () =
  let g = Netgraph.Gen.path 5 in
  let r = Sim.Runner.run ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
  check_bool "informed" true r.Sim.Runner.all_informed;
  check_int "one message per edge" 4 r.Sim.Runner.stats.Sim.Runner.sent

let test_flooding_cycle_message_range () =
  let g = Netgraph.Gen.cycle 8 in
  let r = Sim.Runner.run ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
  check_bool "informed" true r.Sim.Runner.all_informed;
  let m = Netgraph.Graph.m g in
  let sent = r.Sim.Runner.stats.Sim.Runner.sent in
  check_bool "between m and 2m" true (sent >= m && sent <= 2 * m)

let test_flooding_all_schedulers () =
  let g = Netgraph.Gen.grid ~rows:4 ~cols:4 in
  List.iter
    (fun sched ->
      let r = Sim.Runner.run ~scheduler:sched ~advice:no_advice g ~source:5 Sim.Scheme.flooding in
      check_bool (Sim.Scheduler.name sched) true r.Sim.Runner.all_informed)
    Sim.Scheduler.default_suite

(* {1 Runner semantics} *)

let test_sync_rounds_equal_eccentricity () =
  (* Under the synchronous scheduler flooding reaches distance d in round
     d; the number of rounds with any delivery is the source's
     eccentricity (+1 for the final silent flush round of far leaves). *)
  let g = Netgraph.Gen.path 6 in
  let r =
    Sim.Runner.run ~scheduler:Sim.Scheduler.Synchronous ~advice:no_advice g ~source:0
      Sim.Scheme.flooding
  in
  check_bool "informed" true r.Sim.Runner.all_informed;
  check_int "rounds = eccentricity" 5 r.Sim.Runner.stats.Sim.Runner.rounds

let test_max_messages_cutoff () =
  (* A ping-pong scheme that never stops. *)
  let ping _static =
    {
      Sim.Scheme.on_start = (fun () -> [ (Sim.Message.Hello, 0) ]);
      on_receive = (fun _ ~port -> [ (Sim.Message.Hello, port) ]);
    }
  in
  let g = Netgraph.Gen.path 2 in
  let r = Sim.Runner.run ~max_messages:50 ~advice:no_advice g ~source:0 ping in
  check_bool "cutoff hit" false r.Sim.Runner.quiescent;
  check_bool "sent around the cutoff" true (r.Sim.Runner.stats.Sim.Runner.sent >= 50)

let test_informed_requires_informed_sender () =
  (* Node 1 (not the source) spontaneously pings node 2; node 2 must NOT
     become informed by that message. *)
  let g = Netgraph.Gen.path 3 in
  let factory static =
    if static.Sim.History.id = 2 then
      {
        (* node index 1 has label 2; its port 1 leads to node 2 *)
        Sim.Scheme.on_start = (fun () -> [ (Sim.Message.Hello, 1) ]);
        on_receive = (fun _ ~port:_ -> []);
      }
    else { Sim.Scheme.on_start = (fun () -> []); on_receive = (fun _ ~port:_ -> []) }
  in
  let r = Sim.Runner.run ~advice:no_advice g ~source:0 factory in
  check_bool "source informed" true r.Sim.Runner.informed.(0);
  check_bool "bystander not informed" false r.Sim.Runner.informed.(2)

let test_informed_spreads_through_relay () =
  (* The source pings node 1, which relays; node 2 must become informed
     because node 1 was informed when it relayed. *)
  let g = Netgraph.Gen.path 3 in
  let factory static =
    if static.Sim.History.is_source then
      {
        Sim.Scheme.on_start = (fun () -> [ (Sim.Message.Hello, 0) ]);
        on_receive = (fun _ ~port:_ -> []);
      }
    else
      {
        Sim.Scheme.on_start = (fun () -> []);
        on_receive =
          (fun _ ~port ->
            if static.Sim.History.degree > 1 then [ (Sim.Message.Hello, 1 - port) ] else []);
      }
  in
  let r = Sim.Runner.run ~advice:no_advice g ~source:0 factory in
  check_bool "relay informed" true r.Sim.Runner.informed.(1);
  check_bool "end informed" true r.Sim.Runner.informed.(2)

let test_out_of_range_port_rejected () =
  let bad _static =
    { Sim.Scheme.on_start = (fun () -> [ (Sim.Message.Hello, 7) ]); on_receive = (fun _ ~port:_ -> []) }
  in
  let g = Netgraph.Gen.path 2 in
  match Sim.Runner.run ~advice:no_advice g ~source:0 bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected port range error"

let test_trace_recording () =
  let g = Netgraph.Gen.path 4 in
  let r = Sim.Runner.run ~record_trace:true ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
  check_int "deliveries = sent" r.Sim.Runner.stats.Sim.Runner.sent
    (List.length r.Sim.Runner.deliveries);
  (* Sequence numbers are unique. *)
  let seqs = List.map (fun d -> d.Sim.Runner.seq) r.Sim.Runner.deliveries in
  check_int "unique seqs" (List.length seqs) (List.length (List.sort_uniq compare seqs));
  (* Every delivery is a real edge. *)
  List.iter
    (fun d ->
      check_bool "edge exists" true (Netgraph.Graph.has_edge g d.Sim.Runner.src d.Sim.Runner.dst))
    r.Sim.Runner.deliveries;
  let untraced = Sim.Runner.run ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
  check_int "no trace by default" 0 (List.length untraced.Sim.Runner.deliveries)

let test_message_type_counters () =
  let g = Netgraph.Gen.path 3 in
  let r = Sim.Runner.run ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
  check_int "all source messages" r.Sim.Runner.stats.Sim.Runner.sent
    r.Sim.Runner.stats.Sim.Runner.source_sent;
  check_int "no hellos" 0 r.Sim.Runner.stats.Sim.Runner.hello_sent;
  check_int "bits = messages (1-bit each)" r.Sim.Runner.stats.Sim.Runner.sent
    r.Sim.Runner.stats.Sim.Runner.bits_on_wire

let test_silent_network_check () =
  let g = Netgraph.Gen.path 3 in
  check_bool "flooding is a wakeup scheme" true
    (Sim.Runner.run_silent_network_check ~advice:no_advice g ~source:0 Sim.Scheme.flooding);
  let chatty _static =
    { Sim.Scheme.on_start = (fun () -> [ (Sim.Message.Hello, 0) ]); on_receive = (fun _ ~port:_ -> []) }
  in
  check_bool "chatty is not" false
    (Sim.Runner.run_silent_network_check ~advice:no_advice g ~source:0 chatty)

let test_scheduler_names () =
  Alcotest.(check string) "sync" "sync" (Sim.Scheduler.name Sim.Scheduler.Synchronous);
  Alcotest.(check string) "fifo" "async-fifo" (Sim.Scheduler.name Sim.Scheduler.Async_fifo);
  Alcotest.(check string) "lifo" "async-lifo" (Sim.Scheduler.name Sim.Scheduler.Async_lifo);
  Alcotest.(check string)
    "random" "async-random(3)"
    (Sim.Scheduler.name (Sim.Scheduler.Async_random 3))

(* {1 Metrics} *)

let test_metrics_ratios () =
  let s =
    Sim.Metrics.ratios ~xs:[ 1.0; 2.0; 4.0 ] ~ys:[ 2.0; 4.0; 8.0 ] ~model:(fun x -> x)
  in
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.Sim.Metrics.mean;
  Alcotest.(check (float 1e-9)) "max" 2.0 s.Sim.Metrics.max;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Sim.Metrics.min

let test_metrics_linear_fit () =
  let slope, intercept =
    Sim.Metrics.linear_fit ~xs:[ 0.0; 1.0; 2.0; 3.0 ] ~ys:[ 1.0; 3.0; 5.0; 7.0 ]
  in
  Alcotest.(check (float 1e-9)) "slope" 2.0 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 intercept

let test_metrics_loglog () =
  let xs = [ 2.0; 4.0; 8.0; 16.0 ] in
  let ys = List.map (fun x -> 3.0 *. (x ** 1.5)) xs in
  Alcotest.(check (float 1e-6)) "exponent" 1.5 (Sim.Metrics.loglog_slope ~xs ~ys)

let test_metrics_errors () =
  (match Sim.Metrics.ratios ~xs:[] ~ys:[] ~model:(fun x -> x) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty input");
  match Sim.Metrics.loglog_slope ~xs:[ 1.0; -2.0 ] ~ys:[ 1.0; 2.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative data"

let suite =
  [
    Alcotest.test_case "message sizes" `Quick test_message_sizes;
    Alcotest.test_case "message equality" `Quick test_message_equal;
    Alcotest.test_case "history" `Quick test_history;
    Alcotest.test_case "of_pure sees growing history" `Quick test_of_pure_sees_growing_history;
    Alcotest.test_case "check_wakeup" `Quick test_check_wakeup_catches_violation;
    Alcotest.test_case "flooding on a path" `Quick test_flooding_path;
    Alcotest.test_case "flooding on a cycle" `Quick test_flooding_cycle_message_range;
    Alcotest.test_case "flooding under all schedulers" `Quick test_flooding_all_schedulers;
    Alcotest.test_case "synchronous rounds" `Quick test_sync_rounds_equal_eccentricity;
    Alcotest.test_case "max_messages cutoff" `Quick test_max_messages_cutoff;
    Alcotest.test_case "informed needs informed sender" `Quick
      test_informed_requires_informed_sender;
    Alcotest.test_case "informed spreads through relays" `Quick
      test_informed_spreads_through_relay;
    Alcotest.test_case "out-of-range port rejected" `Quick test_out_of_range_port_rejected;
    Alcotest.test_case "trace recording" `Quick test_trace_recording;
    Alcotest.test_case "message type counters" `Quick test_message_type_counters;
    Alcotest.test_case "silent network check" `Quick test_silent_network_check;
    Alcotest.test_case "scheduler names" `Quick test_scheduler_names;
    Alcotest.test_case "metrics: ratios" `Quick test_metrics_ratios;
    Alcotest.test_case "metrics: linear fit" `Quick test_metrics_linear_fit;
    Alcotest.test_case "metrics: log-log slope" `Quick test_metrics_loglog;
    Alcotest.test_case "metrics: errors" `Quick test_metrics_errors;
  ]

let test_causal_depth_sync_equals_rounds () =
  let g = Netgraph.Gen.path 7 in
  let r =
    Sim.Runner.run ~scheduler:Sim.Scheduler.Synchronous ~advice:no_advice g ~source:0
      Sim.Scheme.flooding
  in
  check_int "depth = rounds" r.Sim.Runner.stats.Sim.Runner.rounds
    r.Sim.Runner.stats.Sim.Runner.causal_depth

let test_causal_depth_async_invariant () =
  (* Information needs at least eccentricity-many causal hops whatever the
     delivery order (plus bounded-by-chain-length slack for the wasted
     final forwards). *)
  let g = Netgraph.Gen.grid ~rows:4 ~cols:4 in
  let ecc = Netgraph.Traverse.eccentricity g 0 in
  List.iter
    (fun sched ->
      let r = Sim.Runner.run ~scheduler:sched ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
      let depth = r.Sim.Runner.stats.Sim.Runner.causal_depth in
      check_bool
        (Printf.sprintf "%s: %d >= ecc %d" (Sim.Scheduler.name sched) depth ecc)
        true (depth >= ecc);
      check_bool
        (Printf.sprintf "%s: %d bounded by n" (Sim.Scheduler.name sched) depth)
        true
        (depth <= Netgraph.Graph.n g))
    Sim.Scheduler.default_suite

let suite =
  suite
  @ [
      Alcotest.test_case "causal depth under sync" `Quick test_causal_depth_sync_equals_rounds;
      Alcotest.test_case "causal depth is schedule-independent for flooding" `Quick
        test_causal_depth_async_invariant;
    ]

let test_lossy_delivery () =
  (* Wakeup-style single-path dissemination dies under loss; redundant
     flooding survives mild loss.  Deterministic in the loss seed. *)
  let g = Netgraph.Gen.complete 24 in
  let lossy = Sim.Runner.run ~loss:(0.2, 7) ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
  check_bool "flooding survives 20% loss on K_24" true lossy.Sim.Runner.all_informed;
  (* Sent counts transmissions, including lost ones. *)
  check_bool "sent counted" true (lossy.Sim.Runner.stats.Sim.Runner.sent > 0);
  let path = Netgraph.Gen.path 40 in
  let fragile = Sim.Runner.run ~loss:(0.3, 7) ~advice:no_advice path ~source:0 Sim.Scheme.flooding in
  check_bool "a 40-hop chain at 30% loss breaks" false fragile.Sim.Runner.all_informed

let test_loss_zero_is_reliable () =
  let g = Netgraph.Gen.grid ~rows:4 ~cols:4 in
  let a = Sim.Runner.run ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
  let b = Sim.Runner.run ~loss:(0.0, 1) ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
  check_int "same messages" a.Sim.Runner.stats.Sim.Runner.sent b.Sim.Runner.stats.Sim.Runner.sent;
  check_bool "both informed" true (a.Sim.Runner.all_informed && b.Sim.Runner.all_informed)

let test_loss_probability_validation () =
  let g = Netgraph.Gen.path 2 in
  match Sim.Runner.run ~loss:(1.0, 1) ~advice:no_advice g ~source:0 Sim.Scheme.flooding with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "loss = 1.0 must be rejected"

let suite =
  suite
  @ [
      Alcotest.test_case "lossy delivery" `Quick test_lossy_delivery;
      Alcotest.test_case "zero loss is reliable" `Quick test_loss_zero_is_reliable;
      Alcotest.test_case "loss probability validated" `Quick test_loss_probability_validation;
    ]

let test_per_node_load () =
  let g = Netgraph.Gen.star 8 in
  let r = Sim.Runner.run ~advice:no_advice g ~source:0 Sim.Scheme.flooding in
  check_int "total is the sum" r.Sim.Runner.stats.Sim.Runner.sent
    (Array.fold_left ( + ) 0 r.Sim.Runner.per_node_sent);
  check_int "the hub carries everything" 7 r.Sim.Runner.per_node_sent.(0);
  for v = 1 to 7 do
    check_int (Printf.sprintf "leaf %d silent" v) 0 r.Sim.Runner.per_node_sent.(v)
  done

let suite = suite @ [ Alcotest.test_case "per-node load" `Quick test_per_node_load ]

let test_check_wakeup_through_runner () =
  (* The checker must also fire on the full execution path, not just on a
     hand-driven node: a scheme whose non-source nodes speak spontaneously
     aborts the run. *)
  let chatty _static =
    { Sim.Scheme.on_start = (fun () -> [ (Sim.Message.Hello, 0) ]); on_receive = (fun _ ~port:_ -> []) }
  in
  let g = Netgraph.Gen.path 3 in
  (match Sim.Runner.run ~advice:no_advice g ~source:0 (Sim.Scheme.check_wakeup chatty) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected a wakeup violation from the full run");
  (* flooding only ever replies to a received message: the checked run
     completes untouched *)
  let r = Sim.Runner.run ~advice:no_advice g ~source:0 (Sim.Scheme.check_wakeup Sim.Scheme.flooding) in
  check_bool "checked flooding still informs" true r.Sim.Runner.all_informed;
  check_int "checked flooding unchanged" 2 r.Sim.Runner.stats.Sim.Runner.sent

let test_metrics_more_errors () =
  (match Sim.Metrics.ratios ~xs:[ 1.0; 2.0 ] ~ys:[ 1.0 ] ~model:(fun x -> x) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted");
  (match Sim.Metrics.mean [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mean of nothing");
  (match Sim.Metrics.maximum [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "maximum of nothing");
  (* the growth exponent needs two distinct positive abscissae *)
  (match Sim.Metrics.loglog_slope ~xs:[ 4.0 ] ~ys:[ 8.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single point fitted");
  match Sim.Metrics.loglog_slope ~xs:[ 2.0; 2.0 ] ~ys:[ 1.0; 2.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "coincident xs fitted"

let suite =
  suite
  @ [
      Alcotest.test_case "check_wakeup through the runner" `Quick test_check_wakeup_through_runner;
      Alcotest.test_case "metrics: more errors" `Quick test_metrics_more_errors;
    ]
