open Oracle_core
module Graph = Netgraph.Graph
module Families = Netgraph.Families

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_max_finding_all_families () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:32 ~seed:113 in
      let o = Election.max_finding g in
      check_bool (Families.name fam ^ " unique max-label leader") true o.Election.ok;
      check_int (Families.name fam ^ " zero advice") 0 o.Election.advice_bits)
    Families.all

let test_max_finding_leader_is_max () =
  let g = Netgraph.Transform.permute_labels (Netgraph.Gen.cycle 15) (Random.State.make [| 5 |]) in
  let o = Election.max_finding g in
  match o.Election.leader with
  | Some v -> check_int "max label" 15 (Graph.label g v)
  | None -> Alcotest.fail "no unique leader"

let test_max_finding_all_schedulers () =
  let g = Families.build Families.Sparse_random ~n:24 ~seed:127 in
  List.iter
    (fun sched ->
      let o = Election.max_finding ~scheduler:sched g in
      check_bool (Sim.Scheduler.name sched) true o.Election.ok)
    Sim.Scheduler.default_suite

let test_marked_leader_one_bit () =
  List.iter
    (fun fam ->
      let g = Families.build fam ~n:32 ~seed:131 in
      let o = Election.with_marked_leader g in
      check_bool (Families.name fam ^ " ok") true o.Election.ok;
      check_int (Families.name fam ^ " one bit of advice") 1 o.Election.advice_bits;
      (* Announcement flooding: at most 2m messages. *)
      check_bool (Families.name fam ^ " cheap") true
        (o.Election.result.Sim.Runner.stats.Sim.Runner.sent <= 2 * Graph.m g))
    Families.all

let test_marked_leader_on_ring_messages () =
  let g = Netgraph.Gen.cycle 20 in
  let o = Election.with_marked_leader g in
  check_bool "ok" true o.Election.ok;
  (* Leader sends 2; each of the other n-1 nodes forwards once except the
     two whose announcements cross: n+1 or n messages. *)
  let sent = o.Election.result.Sim.Runner.stats.Sim.Runner.sent in
  check_bool (Printf.sprintf "n-ish messages (%d)" sent) true (sent >= 20 && sent <= 22)

let test_marked_oracle_shape () =
  let g = Families.build Families.Grid ~n:25 ~seed:137 in
  let advice = Election.marked_leader_oracle.Oracles.Oracle.advise g ~source:0 in
  check_int "total one bit" 1 (Oracles.Advice.size_bits advice);
  check_int "exactly one node advised" 1 (Oracles.Advice.nonempty_nodes advice)

let test_anonymous_impossibility () =
  List.iter
    (fun n ->
      let roles = Election.anonymous_attempt ~n in
      check_int (Printf.sprintf "n=%d all nodes" n) n (Array.length roles);
      (* Symmetry: every node reaches the same decision — never a unique
         leader. *)
      let first = roles.(0) in
      Array.iter
        (fun r -> check_bool "uniform decisions" true (r = first))
        roles;
      let leaders = Array.fold_left (fun acc r -> if r = Election.Leader then acc + 1 else acc) 0 roles in
      check_bool (Printf.sprintf "n=%d: no unique leader" n) true (leaders <> 1))
    [ 3; 4; 8; 16 ]

let test_election_vs_dissemination_difficulty () =
  (* The headline contrast: on the same network, election needs 1 advice
     bit, broadcast ~2n, wakeup ~n lg n. *)
  let g = Families.build Families.Sparse_random ~n:64 ~seed:139 in
  let e = Election.with_marked_leader g in
  let b = Broadcast.run g ~source:0 in
  let w = Wakeup.run g ~source:0 in
  check_bool "election << broadcast" true (e.Election.advice_bits * 50 < b.Broadcast.advice_bits);
  check_bool "broadcast << wakeup" true (2 * b.Broadcast.advice_bits < w.Wakeup.advice_bits)

let qcheck_max_finding =
  QCheck.Test.make ~name:"max-label flooding elects the max" ~count:40
    QCheck.(pair (int_range 2 40) (int_range 0 999))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let g =
        Netgraph.Transform.permute_labels (Netgraph.Gen.random_connected ~n ~p:0.2 st) st
      in
      let o = Election.max_finding g in
      o.Election.ok)

let suite =
  [
    Alcotest.test_case "max finding on all families" `Quick test_max_finding_all_families;
    Alcotest.test_case "leader is the max label" `Quick test_max_finding_leader_is_max;
    Alcotest.test_case "all schedulers" `Quick test_max_finding_all_schedulers;
    Alcotest.test_case "1-bit oracle elects" `Quick test_marked_leader_one_bit;
    Alcotest.test_case "ring announcement cost" `Quick test_marked_leader_on_ring_messages;
    Alcotest.test_case "oracle is exactly one bit" `Quick test_marked_oracle_shape;
    Alcotest.test_case "anonymous impossibility" `Quick test_anonymous_impossibility;
    Alcotest.test_case "difficulty ladder" `Quick test_election_vs_dissemination_difficulty;
    QCheck_alcotest.to_alcotest qcheck_max_finding;
  ]
