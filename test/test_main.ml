let () =
  Alcotest.run "oracle-size"
    [
      ("bitbuf", Test_bitbuf.suite);
      ("binary", Test_binary.suite);
      ("codes", Test_codes.suite);
      ("ecc", Test_ecc.suite);
      ("graph", Test_graph.suite);
      ("gen", Test_gen.suite);
      ("traverse", Test_traverse.suite);
      ("dsu", Test_dsu.suite);
      ("spanning", Test_spanning.suite);
      ("transform", Test_transform.suite);
      ("codec", Test_codec.suite);
      ("families", Test_families.suite);
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("fault", Test_fault.suite);
      ("oracle", Test_oracle.suite);
      ("wakeup", Test_wakeup.suite);
      ("broadcast", Test_broadcast.suite);
      ("edge-discovery", Test_edge_discovery.suite);
      ("bounds", Test_bounds.suite);
      ("lower-bound", Test_lower_bound.suite);
      ("separation", Test_separation.suite);
      ("gossip", Test_gossip.suite);
      ("neighborhood", Test_neighborhood.suite);
      ("agent", Test_agent.suite);
      ("radio", Test_radio.suite);
      ("bignat", Test_bignat.suite);
      ("dot", Test_dot.suite);
      ("election", Test_election.suite);
      ("tree-construction", Test_tree_construction.suite);
      ("mst", Test_mst.suite);
      ("spanner", Test_spanner.suite);
      ("scale", Test_scale.suite);
      ("sweep", Test_sweep.suite);
    ]
