open Oracle_core
module ED = Edge_discovery

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_edge_normalisation () =
  Alcotest.(check (pair int int)) "ordered" (2, 5) (ED.edge 5 2);
  Alcotest.(check (pair int int)) "already ordered" (2, 5) (ED.edge 2 5);
  (match ED.edge 3 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "equal labels rejected");
  match ED.edge 0 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive labels rejected"

let test_all_edges () =
  let es = ED.all_edges ~n:5 in
  check_int "C(5,2)" 10 (List.length es);
  check_bool "sorted" true (List.sort compare es = es);
  check_bool "first" true (List.hd es = (1, 2))

let test_make_instance_validation () =
  let ok =
    ED.make_instance ~n:4 ~specials:[ ((1, 2), 2); ((3, 4), 1) ] ~excluded:[ (1, 3) ]
  in
  check_int "n" 4 ok.ED.n;
  (match ED.make_instance ~n:4 ~specials:[ ((1, 2), 1); ((1, 2), 2) ] ~excluded:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate special");
  (match ED.make_instance ~n:4 ~specials:[ ((1, 2), 1) ] ~excluded:[ (1, 2) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "X ∩ Y ≠ ∅");
  (match ED.make_instance ~n:4 ~specials:[ ((1, 2), 3) ] ~excluded:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad labels");
  match ED.make_instance ~n:3 ~specials:[ ((1, 5), 1) ] ~excluded:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "edge outside K*_n"

let test_enumeration_count () =
  (* C(C(4,2) - 1, 2) * 2! = C(5,2) * 2 = 20 *)
  let instances = ED.enumerate_instances ~n:4 ~x_size:2 ~excluded:[ (1, 2) ] in
  check_int "count" 20 (List.length instances)

let test_sampling () =
  let st = Random.State.make [| 3 |] in
  let instances = ED.sample_instances ~n:6 ~x_size:3 ~excluded:[ (1, 2); (3, 4) ] ~count:25 st in
  check_int "count" 25 (List.length instances);
  List.iter
    (fun i ->
      check_int "x size" 3 (List.length i.ED.specials);
      List.iter
        (fun (e, _) -> check_bool "not excluded" false (List.mem e i.ED.excluded))
        i.ED.specials)
    instances

let test_adversary_rejects_bad_families () =
  (match ED.adversary [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty family");
  let a = ED.make_instance ~n:4 ~specials:[ ((1, 2), 1) ] ~excluded:[] in
  let b = ED.make_instance ~n:5 ~specials:[ ((1, 2), 1) ] ~excluded:[] in
  match ED.adversary [ a; b ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-uniform family"

let test_probe_mechanics () =
  let instances = ED.enumerate_instances ~n:4 ~x_size:1 ~excluded:[ (3, 4) ] in
  let adv = ED.adversary instances in
  check_int "initial active" 5 (ED.active adv);
  (* Probing the excluded edge answers Regular, costs a message, discards
     nothing. *)
  check_bool "excluded regular" true (ED.probe adv (3, 4) = ED.Regular);
  check_int "one probe" 1 (ED.probes adv);
  check_int "nothing discarded" 5 (ED.active adv);
  (* Re-probing a decided edge repeats the answer. *)
  check_bool "repeat" true (ED.probe adv (3, 4) = ED.Regular);
  check_int "still costs" 2 (ED.probes adv)

let test_adversary_majority_keeps_half () =
  let instances = ED.enumerate_instances ~n:4 ~x_size:1 ~excluded:[] in
  let adv = ED.adversary instances in
  let before = ED.active adv in
  ignore (ED.probe adv (1, 2));
  check_bool "at least half survive" true (2 * ED.active adv >= before)

let test_play_sequential_meets_bound () =
  List.iter
    (fun (n, x_size) ->
      let instances = ED.enumerate_instances ~n ~x_size ~excluded:[] in
      let adv = ED.adversary instances in
      let out = ED.play adv ED.sequential in
      check_bool
        (Printf.sprintf "n=%d x=%d: %d >= %.2f" n x_size out.ED.probes_used out.ED.bound)
        true
        (float_of_int out.ED.probes_used >= out.ED.bound -. 1e-6);
      check_int "found all" x_size (List.length out.ED.found))
    [ (4, 1); (4, 2); (5, 1); (5, 2); (6, 2) ]

let test_play_random_meets_bound () =
  let instances = ED.enumerate_instances ~n:5 ~x_size:2 ~excluded:[ (4, 5) ] in
  List.iter
    (fun seed ->
      let adv = ED.adversary instances in
      let out = ED.play adv (ED.random_strategy ~seed) in
      check_bool
        (Printf.sprintf "seed %d" seed)
        true
        (float_of_int out.ED.probes_used >= out.ED.bound -. 1e-6))
    [ 1; 2; 3; 4; 5 ]

let test_discovered_labels () =
  let instances = ED.enumerate_instances ~n:5 ~x_size:3 ~excluded:[] in
  let adv = ED.adversary instances in
  let out = ED.play adv ED.sequential in
  Alcotest.(check (list int))
    "labels are a permutation of 1..3"
    [ 1; 2; 3 ]
    (List.sort compare (List.map snd out.ED.found));
  check_bool "solved" true (ED.solved adv);
  check_bool "at least one instance remains" true (ED.active adv >= 1)

let test_final_answers_consistent () =
  (* After play, some surviving instance must agree with every recorded
     answer: the adversary never lies. *)
  let instances = ED.enumerate_instances ~n:5 ~x_size:2 ~excluded:[] in
  let adv = ED.adversary instances in
  let out = ED.play adv ED.sequential in
  check_bool "survivor matches discovered X" true
    (ED.active adv >= 1
    && List.for_all
         (fun (e, l) ->
           (* every discovered (e,l) appears in the adversary's record *)
           List.mem (e, l) out.ED.found)
         out.ED.found)

let test_stalling_strategy_fails () =
  let instances = ED.enumerate_instances ~n:4 ~x_size:1 ~excluded:[] in
  let adv = ED.adversary instances in
  let stubborn =
    {
      ED.strategy_name = "stubborn";
      next_probe = (fun ~n:_ ~x_size:_ ~excluded:_ ~history:_ -> (1, 2));
    }
  in
  (* If (1,2) comes back Regular the strategy can never finish. *)
  match ED.play adv stubborn with
  | exception Failure _ -> ()
  | out ->
    (* The adversary may have declared (1,2) special, in which case the
       stubborn strategy wins instantly; that is legal. *)
    check_int "lucky hit" 1 (List.length out.ED.found)

let test_bound_matches_formula () =
  let instances = ED.enumerate_instances ~n:5 ~x_size:2 ~excluded:[] in
  let adv = ED.adversary instances in
  let expected =
    Float.log2 (float_of_int (List.length instances)) -. Bitstring.Binary.log2_factorial 2
  in
  Alcotest.(check (float 1e-9)) "log2(|I|/|X|!)" expected (ED.lower_bound adv)

let qcheck_adversary_sound =
  (* Random strategies against random sampled families: the bound from
     Lemma 2.1 never exceeds the probes actually used, and the adversary's
     internal counting invariant (checked on every probe) never trips. *)
  QCheck.Test.make ~name:"Lemma 2.1 bound holds on sampled families" ~count:25
    QCheck.(triple (int_range 4 7) (int_range 1 3) (int_range 0 999))
    (fun (n, x_size, seed) ->
      let st = Random.State.make [| n; x_size; seed |] in
      let instances = ED.sample_instances ~n ~x_size ~excluded:[] ~count:40 st in
      (* sampling with replacement may duplicate; dedupe for a set family *)
      let uniq = List.sort_uniq compare instances in
      let adv = ED.adversary uniq in
      let out = ED.play adv (ED.random_strategy ~seed) in
      float_of_int out.ED.probes_used >= out.ED.bound -. 1e-6 && ED.solved adv)

let suite =
  [
    Alcotest.test_case "edge normalisation" `Quick test_edge_normalisation;
    Alcotest.test_case "all_edges" `Quick test_all_edges;
    Alcotest.test_case "instance validation" `Quick test_make_instance_validation;
    Alcotest.test_case "enumeration count" `Quick test_enumeration_count;
    Alcotest.test_case "sampling" `Quick test_sampling;
    Alcotest.test_case "adversary input validation" `Quick test_adversary_rejects_bad_families;
    Alcotest.test_case "probe mechanics" `Quick test_probe_mechanics;
    Alcotest.test_case "majority rule keeps half" `Quick test_adversary_majority_keeps_half;
    Alcotest.test_case "sequential play meets the bound" `Quick test_play_sequential_meets_bound;
    Alcotest.test_case "random play meets the bound" `Quick test_play_random_meets_bound;
    Alcotest.test_case "discovered labels" `Quick test_discovered_labels;
    Alcotest.test_case "final answers consistent" `Quick test_final_answers_consistent;
    Alcotest.test_case "stalling strategy fails" `Quick test_stalling_strategy_fails;
    Alcotest.test_case "bound formula" `Quick test_bound_matches_formula;
    QCheck_alcotest.to_alcotest qcheck_adversary_sound;
  ]
