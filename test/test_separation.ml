open Oracle_core
module Families = Netgraph.Families

let check_bool = Alcotest.(check bool)

let test_measure_all_families () =
  List.iter
    (fun fam ->
      let m = Separation.measure fam ~n:48 ~seed:61 in
      check_bool (m.Separation.family ^ " wakeup ok") true m.Separation.wakeup_ok;
      check_bool (m.Separation.family ^ " broadcast ok") true m.Separation.broadcast_ok;
      check_bool (m.Separation.family ^ " separation visible") true
        (m.Separation.bits_ratio > 1.0))
    Families.all

let test_ratio_grows_with_n () =
  let ms = Separation.sweep Families.Random_tree ~ns:[ 32; 128; 512 ] ~seed:67 in
  match List.map (fun m -> m.Separation.bits_ratio) ms with
  | [ r32; r128; r512 ] ->
    check_bool "32 -> 128" true (r128 > r32);
    check_bool "128 -> 512" true (r512 > r128)
  | _ -> Alcotest.fail "wrong sweep length"

let test_broadcast_bits_linear () =
  (* Theorem 3.1: bits/n bounded by 8 across the sweep. *)
  let ms = Separation.sweep Families.Sparse_random ~ns:[ 64; 256; 1024 ] ~seed:71 in
  List.iter
    (fun m ->
      check_bool
        (Printf.sprintf "n=%d: %d <= 8n" m.Separation.n m.Separation.broadcast_bits)
        true
        (m.Separation.broadcast_bits <= 8 * m.Separation.n))
    ms

let test_wakeup_bits_nlogn () =
  (* Theorem 2.1: bits within (1+o(1)) n log n; check against the explicit
     finite-n budget. *)
  let ms = Separation.sweep Families.Grid ~ns:[ 64; 256; 1024 ] ~seed:73 in
  List.iter
    (fun m ->
      check_bool
        (Printf.sprintf "n=%d within budget" m.Separation.n)
        true
        (m.Separation.wakeup_bits <= Bounds.wakeup_advice_upper ~n:m.Separation.n))
    ms

let test_ratio_growth_positive () =
  let ms = Separation.sweep Families.Random_tree ~ns:[ 32; 64; 128; 256 ] ~seed:79 in
  check_bool "growth slope positive" true (Separation.ratio_growth ms > 0.0)

let suite =
  [
    Alcotest.test_case "measure on all families" `Quick test_measure_all_families;
    Alcotest.test_case "ratio grows with n" `Quick test_ratio_grows_with_n;
    Alcotest.test_case "broadcast bits stay linear" `Quick test_broadcast_bits_linear;
    Alcotest.test_case "wakeup bits stay within n log n budget" `Quick test_wakeup_bits_nlogn;
    Alcotest.test_case "ratio growth slope positive" `Quick test_ratio_growth_positive;
  ]
