(* Command-line interface to the library: generate networks, run wakeup and
   broadcast with their oracles, measure the separation, and play the
   edge-discovery adversary. *)

open Cmdliner
module Graph = Netgraph.Graph
module Families = Netgraph.Families

(* {1 Shared arguments} *)

let family_conv =
  let parse s =
    match Families.of_name s with
    | Some f -> Ok f
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown family %S (known: %s)" s
             (String.concat ", " (List.map Families.name Families.all))))
  in
  Arg.conv (parse, fun fmt f -> Format.pp_print_string fmt (Families.name f))

let family_arg =
  Arg.(
    value
    & opt family_conv Families.Sparse_random
    & info [ "f"; "family" ] ~docv:"FAMILY" ~doc:"Graph family (see $(b,graph --list)).")

let n_arg = Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Requested node count.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let source_arg =
  Arg.(value & opt int 0 & info [ "s"; "source" ] ~docv:"NODE" ~doc:"Source node index.")

let scheduler_conv =
  let parse = function
    | "sync" -> Ok Sim.Scheduler.Synchronous
    | "fifo" -> Ok Sim.Scheduler.Async_fifo
    | "lifo" -> Ok Sim.Scheduler.Async_lifo
    | s -> (
      match int_of_string_opt s with
      | Some seed -> Ok (Sim.Scheduler.Async_random seed)
      | None -> Error (`Msg "expected sync, fifo, lifo, or an integer seed"))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Sim.Scheduler.name s))

let scheduler_arg =
  Arg.(
    value
    & opt scheduler_conv Sim.Scheduler.Async_fifo
    & info [ "scheduler" ] ~docv:"SCHED"
        ~doc:"Delivery discipline: sync, fifo, lifo, or an integer seed for random.")

let fault_conv =
  let parse s = match Fault.Plan.of_string s with Ok p -> Ok p | Error msg -> Error (`Msg msg) in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Fault.Plan.to_string p))

let fault_arg =
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "fault" ] ~docv:"PLAN"
        ~doc:
          "Run adversarially under a fault plan, e.g. $(b,drop=0.1,seed=7), \
           $(b,advice-flip=8), or $(b,crash=3@5,dead=1).  The hardened scheme is used, \
           injected faults are recorded in the trace, and a structured verdict is printed \
           (exit 0 on completed/degraded, 1 on stalled/violated).  See DESIGN.md, section \
           'Fault model and verdicts'.")

let protect_conv =
  let parse s =
    match Bitstring.Ecc.of_name s with Ok l -> Ok l | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Bitstring.Ecc.name l))

let protect_arg =
  Arg.(
    value
    & opt protect_conv Bitstring.Ecc.Raw
    & info [ "protect" ] ~docv:"LEVEL"
        ~doc:
          "Error-protect every node's advice before the adversary touches it: $(b,raw) \
           (none, default), $(b,crc) (detect), $(b,hamming) (correct one flipped bit), or \
           $(b,repK) (K-repetition majority, e.g. $(b,rep3)).  Only meaningful together \
           with $(b,--fault); the printed oracle size is the protected size actually \
           handed out.")

let retry_arg =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "Arm the runner's ack/retransmit channel: each message may be retransmitted up \
           to $(docv) times with exponential backoff, and a crashed receiver triggers a \
           link timeout that the hardened schemes answer by re-flooding.  Default 0: \
           recovery off.  Only meaningful together with $(b,--fault).")

(* Job counts are validated at the CLI edge: -j 0, negatives, and
   unparsable ORACLE_SIZE_JOBS values are Cmdliner errors with the
   offending text, not silent clamps. *)
let jobs_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Ok j
    | Some j -> Error (`Msg (Printf.sprintf "job count must be at least 1, got %d" j))
    | None -> Error (`Msg (Printf.sprintf "invalid job count %S (expected a positive integer)" s))
  in
  Arg.conv (parse, Format.pp_print_int)

(* The same edge-validation stance for the distributed-sweep knobs:
   nonsense values are Cmdliner parse errors (exit 124) with the
   offending text, caught before any worker is spawned or socket
   bound, not deep inside Dispatch. *)
let positive_float_conv what =
  let parse s =
    match float_of_string_opt (String.trim s) with
    | Some v when v > 0. && Float.is_finite v -> Ok v
    | Some v -> Error (`Msg (Printf.sprintf "%s must be positive, got %g" what v))
    | None -> Error (`Msg (Printf.sprintf "invalid %s %S (expected a positive number)" what s))
  in
  Arg.conv (parse, Format.pp_print_float)

let batch_conv =
  let parse s =
    match String.trim s with
    | "auto" -> Ok `Auto
    | s -> (
      match int_of_string_opt s with
      | Some b when b >= 1 -> Ok (`Fixed b)
      | Some b -> Error (`Msg (Printf.sprintf "batch size must be at least 1, got %d" b))
      | None ->
        Error
          (`Msg
            (Printf.sprintf "invalid batch size %S (expected a positive integer or 'auto')" s)))
  in
  let print fmt = function
    | `Auto -> Format.pp_print_string fmt "auto"
    | `Fixed b -> Format.pp_print_int fmt b
  in
  Arg.conv (parse, print)

let port_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some p when p >= 1 && p <= 0xffff -> Ok p
    | Some p -> Error (`Msg (Printf.sprintf "port must be in 1..65535, got %d" p))
    | None -> Error (`Msg (Printf.sprintf "invalid port %S (expected an integer in 1..65535)" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let token_conv =
  let parse s =
    if s = "" then Error (`Msg "token must not be empty")
    else if String.length s > Sim.Worker.max_auth_bytes then
      Error (`Msg (Printf.sprintf "token longer than %d bytes" Sim.Worker.max_auth_bytes))
    else Ok s
  in
  Arg.conv (parse, Format.pp_print_string)

let count_conv what =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 0 -> Ok v
    | Some v -> Error (`Msg (Printf.sprintf "%s must be non-negative, got %d" what v))
    | None ->
      Error (`Msg (Printf.sprintf "invalid %s %S (expected a non-negative integer)" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~env:
          (Cmd.Env.info "ORACLE_SIZE_JOBS"
             ~doc:"Default worker-domain count when $(b,--jobs) is absent.")
        ~doc:
          "Worker domains for parallel execution.  Defaults to $(b,ORACLE_SIZE_JOBS) when \
           set, else this machine's recommended domain count.  Results are bit-identical \
           for every $(docv); only the wall time changes.")

let resolve_jobs = function Some j -> j | None -> Sim.Pool.default_jobs ()

(* Same edge-validation stance as [-j] for the intra-run shard count:
   --shards 0, negatives, and unparsable ORACLE_SIZE_SHARDS values are
   Cmdliner errors (exit 124) with the offending text. *)
let shards_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some k when k >= 1 -> Ok k
    | Some k -> Error (`Msg (Printf.sprintf "shard count must be at least 1, got %d" k))
    | None ->
      Error (`Msg (Printf.sprintf "invalid shard count %S (expected a positive integer)" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let shards_arg =
  Arg.(
    value
    & opt (some shards_conv) None
    & info [ "shards" ] ~docv:"N"
        ~env:
          (Cmd.Env.info "ORACLE_SIZE_SHARDS"
             ~doc:"Default shard count when $(b,--shards) is absent.")
        ~doc:
          "Execute one run across $(docv) domains (synchronous scheduler only; asynchronous \
           schedulers always run sequentially).  Defaults to $(b,ORACLE_SIZE_SHARDS) when \
           set, else 1.  Traces, statistics and verdicts are bit-identical for every \
           $(docv); only the wall time changes.")

let resolve_shards = function Some k -> k | None -> Sim.Shard.default_shards ()

let suite_flag =
  Arg.(
    value & flag
    & info [ "suite" ]
        ~doc:
          "With $(b,--fault): run the plan under every scheduler in the default adversary \
           suite, in parallel across $(b,--jobs) worker domains, and print one verdict \
           row per scheduler.  Overrides $(b,--scheduler); incompatible with \
           $(b,--trace-out) (trace sinks are single-writer).")

(* The adversarial path shared by wakeup and broadcast: run the hardened
   harness under the plan and report the verdict. *)
let run_faulty protocol plan ~protect ~retry ~shards family g ~source ~scheduler sinks =
  if retry < 0 then begin
    Printf.eprintf "oraclesize: --retry must be non-negative\n";
    exit 2
  end;
  let o = Fault.Harness.run ~scheduler ~plan ~sinks ~protect ~retry ~shards protocol g ~source in
  let b = Fault.Harness.budgets ~retry protocol g in
  let stats = o.Fault.Harness.result.Sim.Runner.stats in
  Printf.printf "network:      %s, %d nodes, %d edges\n" (Families.name family) (Graph.n g)
    (Graph.m g);
  Printf.printf "fault plan:   %s\n" (Fault.Plan.to_string plan);
  if protect = Bitstring.Ecc.Raw then
    Printf.printf "oracle bits:  %d (after tampering with %d nodes)\n" o.Fault.Harness.advice_bits
      (List.length (List.sort_uniq compare (List.map fst o.Fault.Harness.tampered)))
  else
    Printf.printf "oracle bits:  %d protected (%s) from %d raw, tampering with %d nodes\n"
      o.Fault.Harness.advice_bits (Bitstring.Ecc.name protect) o.Fault.Harness.raw_advice_bits
      (List.length (List.sort_uniq compare (List.map fst o.Fault.Harness.tampered)));
  Printf.printf "messages:     %d  (clean budget %d, degraded budget %d)\n" stats.Sim.Runner.sent
    b.Fault.Verdict.clean b.Fault.Verdict.degraded;
  Printf.printf "faults:       %d injected, %d nodes fell back to flooding\n"
    stats.Sim.Runner.faults
    (List.length o.Fault.Harness.fallbacks);
  if retry > 0 || protect <> Bitstring.Ecc.Raw then begin
    let summary = Obs.Counting.of_events o.Fault.Harness.events in
    Printf.printf "recovery:     %d retransmissions (budget %d), %d bits corrected at %d nodes\n"
      summary.Obs.Counting.retransmits b.Fault.Verdict.recovery
      summary.Obs.Counting.corrected_bits
      (List.length o.Fault.Harness.corrected)
  end;
  Printf.printf "verdict:      %s\n" (Fault.Verdict.to_string o.Fault.Harness.verdict);
  if not (Fault.Verdict.acceptable o.Fault.Harness.verdict) then exit 1

(* [--fault --suite]: the same plan under every scheduler in the default
   adversary suite, fanned out over a domain pool.  Advice is a pure
   function of (protocol, graph, source), so it is computed once here and
   shared read-only by every worker; each run protects and corrupts its
   own copy.  Per-run trace sinks are single-writer, so suite mode runs
   without them and prints one verdict row per scheduler instead. *)
let run_faulty_suite protocol plan ~protect ~retry ~jobs family g ~source =
  if retry < 0 then begin
    Printf.eprintf "oraclesize: --retry must be non-negative\n";
    exit 2
  end;
  let advs = List.map (fun s -> Sim.Adversary.make ~plan s) Sim.Scheduler.default_suite in
  let raw_advice = Fault.Harness.advise protocol g ~source in
  let results =
    Sim.Adversary.map_suite ~jobs
      ~f:(fun adv ->
        Fault.Harness.run ~scheduler:adv.Sim.Adversary.scheduler ~plan ~protect ~retry
          ~raw_advice protocol g ~source)
      advs
  in
  Printf.printf "network:    %s, %d nodes, %d edges\n" (Families.name family) (Graph.n g)
    (Graph.m g);
  Printf.printf "fault plan: %s  (%d schedulers, jobs=%d)\n" (Fault.Plan.to_string plan)
    (List.length advs) jobs;
  Printf.printf "%-18s %9s %7s %11s  %s\n" "scheduler" "messages" "faults" "retransmits"
    "verdict";
  let ok = ref true in
  List.iteri
    (fun i adv ->
      let sched_name = Sim.Scheduler.name adv.Sim.Adversary.scheduler in
      match results.(i) with
      | Error msg ->
        ok := false;
        Printf.printf "%-18s error: %s\n" sched_name msg
      | Ok o ->
        let stats = o.Fault.Harness.result.Sim.Runner.stats in
        let recov = Obs.Counting.of_events o.Fault.Harness.events in
        if not (Fault.Verdict.acceptable o.Fault.Harness.verdict) then ok := false;
        Printf.printf "%-18s %9d %7d %11d  %s\n" sched_name stats.Sim.Runner.sent
          stats.Sim.Runner.faults recov.Obs.Counting.retransmits
          (Fault.Verdict.to_string o.Fault.Harness.verdict))
    advs;
  if not !ok then exit 1

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's telemetry trace to $(docv) as JSON Lines, one event per line \
           (see DESIGN.md, section 'Telemetry').  Use $(b,-) for standard output.")

(* The JSONL sink for [--trace-out], if any; the caller's run function
   receives it open and we close (flush) it afterwards. *)
let with_trace_sinks trace_out f =
  match trace_out with
  | None -> f []
  | Some "-" ->
    let sink = Obs.Jsonl.channel_sink stdout in
    Fun.protect ~finally:(fun () -> Obs.Sink.close sink) (fun () -> f [ sink ])
  | Some file ->
    let sink =
      try Obs.Jsonl.file_sink file
      with Sys_error msg ->
        Printf.eprintf "oraclesize: cannot open trace file: %s\n" msg;
        exit 2
    in
    Fun.protect ~finally:(fun () -> Obs.Sink.close sink) (fun () -> f [ sink ])

let build family n seed = Families.build family ~n ~seed

(* {1 graph} *)

let graph_cmd =
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the known graph families and exit.")
  in
  let dump_flag = Arg.(value & flag & info [ "dump" ] ~doc:"Print the edge list.") in
  let run list_families dump family n seed =
    if list_families then
      List.iter (fun f -> print_endline (Families.name f)) Families.all
    else begin
      let g = build family n seed in
      Printf.printf "family:   %s\nnodes:    %d\nedges:    %d\ndiameter: %d\n"
        (Families.name family) (Graph.n g) (Graph.m g) (Netgraph.Traverse.diameter g);
      Printf.printf "map size: %d bits (full-topology encoding)\n" (Netgraph.Codec.encoded_bits g);
      if dump then print_string (Graph.to_edge_list_string g)
    end
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Generate a port-labeled network and print statistics.")
    Term.(const run $ list_flag $ dump_flag $ family_arg $ n_arg $ seed_arg)

(* {1 wakeup} *)

let wakeup_cmd =
  let encoding_conv =
    let parse = function
      | "paper" -> Ok Oracle_core.Wakeup.Paper
      | "minimal" -> Ok Oracle_core.Wakeup.Paper_minimal
      | "gamma" -> Ok Oracle_core.Wakeup.Gamma
      | s -> Error (`Msg (Printf.sprintf "unknown encoding %S (paper|minimal|gamma)" s))
    in
    Arg.conv
      (parse, fun fmt e -> Format.pp_print_string fmt (Oracle_core.Wakeup.encoding_name e))
  in
  let encoding_arg =
    Arg.(
      value
      & opt encoding_conv Oracle_core.Wakeup.Paper
      & info [ "encoding" ] ~docv:"ENC" ~doc:"Advice encoding: paper, minimal, or gamma.")
  in
  let run family n seed source scheduler encoding fault protect retry suite jobs shards
      trace_out =
    let g = build family n seed in
    let shards = resolve_shards shards in
    match fault with
    | Some plan when suite ->
      if trace_out <> None then begin
        Printf.eprintf "oraclesize: --suite and --trace-out cannot be combined\n";
        exit 2
      end;
      run_faulty_suite Fault.Harness.Wakeup plan ~protect ~retry ~jobs:(resolve_jobs jobs)
        family g ~source
    | Some plan ->
      with_trace_sinks trace_out (fun sinks ->
          run_faulty Fault.Harness.Wakeup plan ~protect ~retry ~shards family g ~source
            ~scheduler sinks)
    | None when suite ->
      Printf.eprintf "oraclesize: --suite is only meaningful together with --fault\n";
      exit 2
    | None ->
      let o =
        with_trace_sinks trace_out (fun sinks ->
            Oracle_core.Wakeup.run ~encoding ~scheduler ~sinks ~shards g ~source)
      in
      let stats = o.Oracle_core.Wakeup.result.Sim.Runner.stats in
      Printf.printf "network:      %s, %d nodes, %d edges\n" (Families.name family) (Graph.n g)
        (Graph.m g);
      Printf.printf "oracle bits:  %d  (Theorem 2.1 budget %d)\n" o.Oracle_core.Wakeup.advice_bits
        (Oracle_core.Bounds.wakeup_advice_upper ~n:(Graph.n g));
      Printf.printf "messages:     %d  (optimal: %d)\n" stats.Sim.Runner.sent (Graph.n g - 1);
      Printf.printf "all awake:    %b\n" o.Oracle_core.Wakeup.result.Sim.Runner.all_informed;
      if not o.Oracle_core.Wakeup.result.Sim.Runner.all_informed then exit 1
  in
  Cmd.v
    (Cmd.info "wakeup" ~doc:"Run the Theorem 2.1 wakeup oracle and scheme.")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ source_arg $ scheduler_arg $ encoding_arg
      $ fault_arg $ protect_arg $ retry_arg $ suite_flag $ jobs_arg $ shards_arg
      $ trace_out_arg)

(* {1 broadcast} *)

let broadcast_cmd =
  let tree_conv =
    let parse = function
      | "light" -> Ok ("light", fun g ~root -> Netgraph.Spanning.light g ~root)
      | "bfs" -> Ok ("bfs", fun g ~root -> Netgraph.Spanning.bfs g ~root)
      | "dfs" -> Ok ("dfs", fun g ~root -> Netgraph.Spanning.dfs g ~root)
      | s -> Error (`Msg (Printf.sprintf "unknown tree %S (light|bfs|dfs)" s))
    in
    Arg.conv (parse, fun fmt (name, _) -> Format.pp_print_string fmt name)
  in
  let tree_arg =
    Arg.(
      value
      & opt tree_conv ("light", fun g ~root -> Netgraph.Spanning.light g ~root)
      & info [ "tree" ] ~docv:"TREE"
          ~doc:"Spanning tree: light (Claim 3.1, default), bfs, or dfs.")
  in
  let run family n seed source scheduler (tree_name, tree) fault protect retry suite jobs
      shards trace_out =
    let g = build family n seed in
    let shards = resolve_shards shards in
    match fault with
    | Some plan when suite ->
      if trace_out <> None then begin
        Printf.eprintf "oraclesize: --suite and --trace-out cannot be combined\n";
        exit 2
      end;
      run_faulty_suite Fault.Harness.Broadcast plan ~protect ~retry ~jobs:(resolve_jobs jobs)
        family g ~source
    | Some plan ->
      with_trace_sinks trace_out (fun sinks ->
          run_faulty Fault.Harness.Broadcast plan ~protect ~retry ~shards family g ~source
            ~scheduler sinks)
    | None when suite ->
      Printf.eprintf "oraclesize: --suite is only meaningful together with --fault\n";
      exit 2
    | None ->
      let o =
        with_trace_sinks trace_out (fun sinks ->
            Oracle_core.Broadcast.run ~tree ~scheduler ~sinks ~shards g ~source)
      in
      let stats = o.Oracle_core.Broadcast.result.Sim.Runner.stats in
      Printf.printf "network:      %s, %d nodes, %d edges\n" (Families.name family) (Graph.n g)
        (Graph.m g);
      Printf.printf "tree:         %s (contribution %d, Claim 3.1 budget %d)\n" tree_name
        o.Oracle_core.Broadcast.tree_contribution
        (4 * Graph.n g);
      Printf.printf "oracle bits:  %d  (Theorem 3.1 budget %d)\n"
        o.Oracle_core.Broadcast.advice_bits (8 * Graph.n g);
      Printf.printf "messages:     %d = %d source + %d hello  (budget < %d)\n"
        stats.Sim.Runner.sent stats.Sim.Runner.source_sent stats.Sim.Runner.hello_sent
        (3 * Graph.n g);
      Printf.printf "all informed: %b\n" o.Oracle_core.Broadcast.result.Sim.Runner.all_informed;
      if not o.Oracle_core.Broadcast.result.Sim.Runner.all_informed then exit 1
  in
  Cmd.v
    (Cmd.info "broadcast" ~doc:"Run the Theorem 3.1 broadcast oracle and Scheme B.")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ source_arg $ scheduler_arg $ tree_arg
      $ fault_arg $ protect_arg $ retry_arg $ suite_flag $ jobs_arg $ shards_arg
      $ trace_out_arg)

(* {1 separation} *)

let separation_cmd =
  let ns_arg =
    Arg.(
      value
      & opt (list int) [ 64; 128; 256; 512; 1024 ]
      & info [ "ns" ] ~docv:"N,N,..." ~doc:"Node counts to sweep.")
  in
  let run family ns seed =
    Printf.printf "%-14s %6s %12s %12s %8s\n" "family" "n" "wakeup bits" "bcast bits" "ratio";
    List.iter
      (fun m ->
        Printf.printf "%-14s %6d %12d %12d %8.2f\n" m.Oracle_core.Separation.family
          m.Oracle_core.Separation.n m.Oracle_core.Separation.wakeup_bits
          m.Oracle_core.Separation.broadcast_bits m.Oracle_core.Separation.bits_ratio)
      (Oracle_core.Separation.sweep family ~ns ~seed)
  in
  Cmd.v
    (Cmd.info "separation" ~doc:"Measure the wakeup/broadcast oracle-size separation.")
    Term.(const run $ family_arg $ ns_arg $ seed_arg)

(* {1 adversary} *)

let adversary_cmd =
  let x_arg =
    Arg.(value & opt int 2 & info [ "x" ] ~docv:"X" ~doc:"Number of special edges |X|.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "sample" ] ~docv:"COUNT"
          ~doc:"Sample COUNT instances instead of full enumeration (0 = enumerate).")
  in
  let strategy_arg =
    Arg.(
      value & opt string "sequential"
      & info [ "strategy" ] ~docv:"STRAT" ~doc:"Probing strategy: sequential or random:SEED.")
  in
  let run n x count strategy_name seed =
    let instances =
      if count = 0 then Oracle_core.Edge_discovery.enumerate_instances ~n ~x_size:x ~excluded:[]
      else
        List.sort_uniq compare
          (Oracle_core.Edge_discovery.sample_instances ~n ~x_size:x ~excluded:[] ~count
             (Random.State.make [| seed |]))
    in
    let strategy =
      match String.split_on_char ':' strategy_name with
      | [ "sequential" ] -> Oracle_core.Edge_discovery.sequential
      | [ "random"; s ] -> Oracle_core.Edge_discovery.random_strategy ~seed:(int_of_string s)
      | [ "random" ] -> Oracle_core.Edge_discovery.random_strategy ~seed
      | _ -> failwith (Printf.sprintf "unknown strategy %S" strategy_name)
    in
    let adv = Oracle_core.Edge_discovery.adversary instances in
    let out = Oracle_core.Edge_discovery.play adv strategy in
    Printf.printf "instances: %d\nLemma 2.1 bound: %.2f\nprobes used (%s): %d\n"
      (List.length instances) out.Oracle_core.Edge_discovery.bound
      strategy.Oracle_core.Edge_discovery.strategy_name
      out.Oracle_core.Edge_discovery.probes_used;
    List.iter
      (fun ((u, v), l) -> Printf.printf "  special {%d,%d} with label %d\n" u v l)
      out.Oracle_core.Edge_discovery.found
  in
  Cmd.v
    (Cmd.info "adversary" ~doc:"Play a discovery strategy against the Lemma 2.1 adversary.")
    Term.(const run $ n_arg $ x_arg $ count_arg $ strategy_arg $ seed_arg)


(* {1 gossip} *)

let gossip_cmd =
  let flooding_flag =
    Arg.(value & flag & info [ "flooding" ] ~doc:"Run the advice-free flooding baseline instead.")
  in
  let run family n seed source scheduler flooding trace_out =
    let g = build family n seed in
    let o =
      with_trace_sinks trace_out (fun sinks ->
          if flooding then Oracle_core.Gossip.run_flooding ~scheduler ~sinks g ~source
          else Oracle_core.Gossip.run ~scheduler ~sinks g ~source)
    in
    let stats = o.Oracle_core.Gossip.result.Sim.Runner.stats in
    Printf.printf "network:      %s, %d nodes, %d edges\n" (Families.name family) (Graph.n g)
      (Graph.m g);
    Printf.printf "oracle bits:  %d\n" o.Oracle_core.Gossip.advice_bits;
    Printf.printf "messages:     %d (tree gossip optimum: %d)\n" stats.Sim.Runner.sent
      (2 * (Graph.n g - 1));
    Printf.printf "bits on wire: %d\n" stats.Sim.Runner.bits_on_wire;
    Printf.printf "complete:     %b\n" o.Oracle_core.Gossip.complete;
    if not o.Oracle_core.Gossip.complete then exit 1
  in
  Cmd.v
    (Cmd.info "gossip" ~doc:"All-to-all rumor exchange with tree advice (or flooding).")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ source_arg $ scheduler_arg $ flooding_flag
      $ trace_out_arg)

(* {1 explore} *)

let explore_cmd =
  let program_arg =
    Arg.(
      value & opt string "dfs"
      & info [ "program" ] ~docv:"PROG"
          ~doc:"Exploration program: dfs, rotor, random:SEED, or guided.")
  in
  let run family n seed source program_name =
    let g = build family n seed in
    let m = Graph.m g in
    let d = Netgraph.Traverse.diameter g in
    let no_advice = Bitstring.Bitbuf.create () in
    let program, advice, budget =
      match String.split_on_char ':' program_name with
      | [ "dfs" ] -> (Agent.Explore.dfs, no_advice, None)
      | [ "rotor" ] -> (Agent.Explore.rotor_router, no_advice, Some ((4 * m * (d + 1)) + (2 * m)))
      | [ "random"; s ] ->
        (Agent.Explore.random_walk ~seed:(int_of_string s), no_advice, Some (200 * m * Graph.n g))
      | [ "random" ] -> (Agent.Explore.random_walk ~seed, no_advice, Some (200 * m * Graph.n g))
      | [ "guided" ] -> (Agent.Explore.guided, Agent.Explore.route_advice g ~start:source, None)
      | _ -> failwith (Printf.sprintf "unknown program %S" program_name)
    in
    let o = Agent.Walker.run ?max_moves:budget ~advice g ~start:source program in
    Printf.printf "network:  %s, %d nodes, %d edges, diameter %d\n" (Families.name family)
      (Graph.n g) m d;
    Printf.printf "program:  %s (advice %d bits)\n" program.Agent.Walker.program_name
      (Bitstring.Bitbuf.length advice);
    Printf.printf "moves:    %d (cover at %s)\n" o.Agent.Walker.moves
      (match o.Agent.Walker.moves_to_cover with Some c -> string_of_int c | None -> "never");
    Printf.printf "covered:  %b, halted: %b\n" o.Agent.Walker.covered o.Agent.Walker.halted;
    if not o.Agent.Walker.covered then exit 1
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Explore the network with a mobile agent.")
    Term.(const run $ family_arg $ n_arg $ seed_arg $ source_arg $ program_arg)

(* {1 radio} *)

let radio_cmd =
  let protocol_arg =
    Arg.(
      value & opt string "decay"
      & info [ "protocol" ] ~docv:"PROTO"
          ~doc:"Radio protocol: round-robin, decay:SEED, or scheduled.")
  in
  let run family n seed source protocol_name =
    let g = build family n seed in
    let no_advice _ = Bitstring.Bitbuf.create () in
    let protocol, advice, advice_bits =
      match String.split_on_char ':' protocol_name with
      | [ "round-robin" ] -> (Radio.Protocols.round_robin, no_advice, 0)
      | [ "decay"; s ] -> (Radio.Protocols.decay ~seed:(int_of_string s), no_advice, 0)
      | [ "decay" ] -> (Radio.Protocols.decay ~seed, no_advice, 0)
      | [ "scheduled" ] ->
        let a = Radio.Protocols.schedule_oracle g ~source in
        (Radio.Protocols.scheduled, Oracles.Advice.get a, Oracles.Advice.size_bits a)
      | _ -> failwith (Printf.sprintf "unknown protocol %S" protocol_name)
    in
    let r = Radio.Model.run ~advice g ~source protocol in
    Printf.printf "network:       %s, %d nodes, diameter %d\n" (Families.name family) (Graph.n g)
      (Netgraph.Traverse.diameter g);
    Printf.printf "protocol:      %s (advice %d bits)\n" protocol.Radio.Model.protocol_name
      advice_bits;
    Printf.printf "rounds:        %d\n" r.Radio.Model.rounds;
    Printf.printf "transmissions: %d, collisions: %d\n" r.Radio.Model.transmissions
      r.Radio.Model.collisions;
    Printf.printf "all informed:  %b\n" r.Radio.Model.all_informed;
    if not r.Radio.Model.all_informed then exit 1
  in
  Cmd.v
    (Cmd.info "radio" ~doc:"Broadcast in the radio (collision) model.")
    Term.(const run $ family_arg $ n_arg $ seed_arg $ source_arg $ protocol_arg)


(* {1 mst} *)

let mst_cmd =
  let advised_flag =
    Arg.(value & flag & info [ "advised" ] ~doc:"Use the MST-ports oracle instead of running Boruvka.")
  in
  let run family n seed advised =
    let g = build family n seed in
    let o =
      if advised then Syncnet.Boruvka.advised_build g else Syncnet.Boruvka.distributed_build g
    in
    Printf.printf "network:     %s, %d nodes, %d edges\n" (Families.name family) (Graph.n g)
      (Graph.m g);
    Printf.printf "oracle bits: %d\n" o.Syncnet.Boruvka.advice_bits;
    Printf.printf "messages:    %d over %d synchronous rounds\n"
      o.Syncnet.Boruvka.result.Syncnet.Model.messages o.Syncnet.Boruvka.result.Syncnet.Model.rounds;
    Printf.printf "tree weight: %s\n"
      (match o.Syncnet.Boruvka.edges with
      | Some es -> string_of_int (Netgraph.Mst.weight g es)
      | None -> "-");
    Printf.printf "matches centralized Kruskal: %b\n" o.Syncnet.Boruvka.matches_reference;
    if not o.Syncnet.Boruvka.matches_reference then exit 1
  in
  Cmd.v
    (Cmd.info "mst" ~doc:"Build the minimum spanning tree (distributed Boruvka or oracle).")
    Term.(const run $ family_arg $ n_arg $ seed_arg $ advised_flag)


(* {1 spanner} *)

let spanner_cmd =
  let stretch_arg =
    Arg.(value & opt int 3 & info [ "t"; "stretch" ] ~docv:"T" ~doc:"Stretch factor t >= 1.")
  in
  let run family n seed stretch =
    let g = build family n seed in
    let o = Oracle_core.Spanner.measure g ~stretch in
    Printf.printf "network:        %s, %d nodes, %d edges\n" (Families.name family) (Graph.n g)
      (Graph.m g);
    Printf.printf "stretch target: %d\n" o.Oracle_core.Spanner.stretch;
    Printf.printf "edges kept:     %d of %d\n" o.Oracle_core.Spanner.edges_kept (Graph.m g);
    Printf.printf "oracle bits:    %d\n" o.Oracle_core.Spanner.advice_bits;
    Printf.printf "worst stretch:  %.1f (valid: %b)\n" o.Oracle_core.Spanner.measured_stretch
      o.Oracle_core.Spanner.valid;
    if not o.Oracle_core.Spanner.valid then exit 1
  in
  Cmd.v
    (Cmd.info "spanner" ~doc:"Build a greedy t-spanner and its port oracle.")
    Term.(const run $ family_arg $ n_arg $ seed_arg $ stretch_arg)

(* {1 perf} *)

let perf_cmd =
  let protocol_arg =
    Arg.(
      value & opt string "wakeup"
      & info [ "protocol" ] ~docv:"PROTO" ~doc:"Protocol to time: wakeup or broadcast.")
  in
  (* A one-row interactive version of bench/perf.ml: build oracle and
     advice once, time only [Sim.Runner.run], report throughput and the
     minor-heap allocation rate.  At jobs = 1 the reps run sequentially
     and are timed in CPU seconds (immune to scheduling noise); at
     jobs > 1 they fan out over a domain pool — same graph, advice and
     factory, all read-only — and wall time is the honest clock.  The
     tracked sweep with the stable JSON schema stays in [dune build
     @perf]; this is the quick spot check. *)
  let run family n seed source protocol jobs =
    let jobs = resolve_jobs jobs in
    let g = build family n seed in
    let advice, factory =
      match protocol with
      | "wakeup" ->
        let o = Oracle_core.Wakeup.oracle () in
        (o.Oracles.Oracle.advise g ~source, Oracle_core.Wakeup.scheme ())
      | "broadcast" ->
        let o = Oracle_core.Broadcast.oracle () in
        (o.Oracles.Oracle.advise g ~source, Oracle_core.Broadcast.scheme ())
      | p ->
        Printf.eprintf "oraclesize perf: unknown protocol %S (wakeup or broadcast)\n" p;
        exit 2
    in
    let run () =
      Sim.Runner.run ~max_messages:(5 * Graph.n g) ~advice:(Oracles.Advice.get advice) g
        ~source factory
    in
    let reps = max 1 (200_000 / Graph.n g) in
    ignore (run ());
    let minor0 = Gc.minor_words () in
    let r = run () in
    let minor = Gc.minor_words () -. minor0 in
    let clock = if jobs = 1 then Sys.time else Unix.gettimeofday in
    let t0 = clock () in
    if jobs = 1 then
      for _ = 1 to reps do
        ignore (run ())
      done
    else
      Sim.Pool.with_pool ~jobs (fun pool ->
          Array.iter
            (function Ok () -> () | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
            (Sim.Pool.map pool (fun _ -> ignore (run ())) reps));
    let dt = (clock () -. t0) /. float_of_int reps in
    let sent = r.Sim.Runner.stats.Sim.Runner.sent in
    Printf.printf "network:       %s, %d nodes, %d edges\n" (Families.name family) (Graph.n g)
      (Graph.m g);
    Printf.printf "protocol:      %s (advice %d bits)\n" protocol
      (Oracles.Advice.size_bits advice);
    Printf.printf "messages:      %d over %d rounds (reps %d, jobs %d)\n" sent
      r.Sim.Runner.stats.Sim.Runner.rounds reps jobs;
    Printf.printf "throughput:    %.0f messages/sec, %.0f rounds/sec (%s)\n"
      (if dt > 0.0 then float_of_int sent /. dt else 0.0)
      (if dt > 0.0 then float_of_int r.Sim.Runner.stats.Sim.Runner.rounds /. dt else 0.0)
      (if jobs = 1 then "CPU time" else "wall time");
    Printf.printf "allocation:    %.1f minor words/message\n"
      (if sent > 0 then minor /. float_of_int sent else 0.0);
    Printf.printf "completed:     informed %b, quiescent %b\n" r.Sim.Runner.all_informed
      r.Sim.Runner.quiescent;
    if not (r.Sim.Runner.all_informed && r.Sim.Runner.quiescent) then exit 1
  in
  Cmd.v
    (Cmd.info "perf" ~doc:"Time the simulation hot path (messages/sec, words/message).")
    Term.(const run $ family_arg $ n_arg $ seed_arg $ source_arg $ protocol_arg $ jobs_arg)

(* {1 sweep} *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let protocol_of_name = function
  | "wakeup" -> Some Fault.Harness.Wakeup
  | "broadcast" -> Some Fault.Harness.Broadcast
  | _ -> None

(* One grid point, executed against the per-worker caches.  Pure in the
   point's coordinates, so sweep and [journal verify] share it: verify
   re-runs this and byte-compares the re-encoded entry. *)
let execute_point grid ~protect ~retry (graphs, advice_cache) p =
  let proto =
    match protocol_of_name p.Sim.Sweep.protocol with
    | Some x -> x
    | None -> failwith (Printf.sprintf "unknown protocol %S" p.Sim.Sweep.protocol)
  in
  let gseed = Sim.Sweep.graph_seed grid p in
  let gkey = (Families.name p.Sim.Sweep.family, p.Sim.Sweep.n, gseed) in
  let g =
    Sim.Sweep.Cache.find graphs gkey (fun () ->
        Families.build p.Sim.Sweep.family ~n:p.Sim.Sweep.n ~seed:gseed)
  in
  let raw_advice =
    Sim.Sweep.Cache.find advice_cache
      (p.Sim.Sweep.protocol, gkey)
      (fun () -> Fault.Harness.advise proto g ~source:0)
  in
  let o =
    Fault.Harness.run ~scheduler:p.Sim.Sweep.scheduler ~plan:p.Sim.Sweep.plan ~protect ~retry
      ~raw_advice proto g ~source:0
  in
  Fault.Harness.journal_entry g o

let row_of_entry p (e : Sim.Journal.entry) =
  Printf.sprintf
    {|{"protocol":"%s","family":"%s","n":%d,"m":%d,"scheduler":"%s","plan":"%s","rep":%d,"seed":%d,"sent":%d,"rounds":%d,"advice_bits":%d,"raw_bits":%d,"faults":%d,"fallbacks":%d,"tampered":%d,"retransmits":%d,"corrected_bits":%d,"informed":%d,"class":"%s","verdict":"%s"}|}
    (json_escape p.Sim.Sweep.protocol)
    (json_escape (Families.name p.Sim.Sweep.family))
    e.Sim.Journal.n e.Sim.Journal.m
    (json_escape (Sim.Scheduler.name p.Sim.Sweep.scheduler))
    (json_escape (Fault.Plan.to_string p.Sim.Sweep.plan))
    p.Sim.Sweep.rep p.Sim.Sweep.seed e.Sim.Journal.messages e.Sim.Journal.rounds
    e.Sim.Journal.advice_bits e.Sim.Journal.raw_advice_bits e.Sim.Journal.faults
    e.Sim.Journal.fallbacks e.Sim.Journal.tampered e.Sim.Journal.retransmits
    e.Sim.Journal.corrected_bits e.Sim.Journal.informed
    (Sim.Journal.class_name e.Sim.Journal.verdict_class)
    (json_escape e.Sim.Journal.verdict)

(* The superblock's extra context: the two sweep knobs that change
   results but are not grid coordinates.  A journal written under one
   (protect, retry) pair refuses to resume under another. *)
let sweep_context ~protect ~retry =
  Printf.sprintf "protect=%s;retry=%d" (Bitstring.Ecc.name protect) retry

let parse_sweep_context extra =
  let ( let* ) = Result.bind in
  match String.split_on_char ';' extra with
  | [ p; r ] ->
    let strip prefix s =
      if String.length s > String.length prefix && String.sub s 0 (String.length prefix) = prefix
      then Ok (String.sub s (String.length prefix) (String.length s - String.length prefix))
      else Error (Printf.sprintf "journal context: expected %s<value>, got %S" prefix s)
    in
    let* pname = strip "protect=" p in
    let* protect =
      match Bitstring.Ecc.of_name pname with Ok l -> Ok l | Error m -> Error m
    in
    let* rstr = strip "retry=" r in
    let* retry =
      match int_of_string_opt rstr with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (Printf.sprintf "journal context: bad retry %S" rstr)
    in
    Ok (protect, retry)
  | _ -> Error (Printf.sprintf "journal context: expected protect=...;retry=..., got %S" extra)

let grid_conv =
  let parse s = match Sim.Sweep.of_string s with Ok g -> Ok g | Error m -> Error (`Msg m) in
  Arg.conv (parse, fun fmt g -> Format.pp_print_string fmt (Sim.Sweep.to_string g))

let sweep_cmd =
  let default_grid =
    match Sim.Sweep.of_string "" with Ok g -> g | Error _ -> assert false
  in
  let grid_arg =
    Arg.(
      value
      & pos 0 grid_conv default_grid
      & info [] ~docv:"GRID"
          ~doc:
            "Grid spec: axes separated by $(b,;), values by $(b,,) — except plans, \
             separated by $(b,|).  E.g. \
             $(b,protocols=wakeup;families=sparse-random;ns=24,64;scheds=sync,async-fifo;plans=none|drop=0.1,seed=7;reps=2;seed=42). \
             Omitted axes default to protocols=wakeup,broadcast families=sparse-random \
             ns=64 scheds=async-fifo plans=none reps=1 seed=42.")
  in
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write one JSON line per grid point to $(docv) ($(b,-), the default: standard \
             output).  Rows are emitted in canonical grid order after the parallel run \
             joins, so the file is byte-identical for every $(b,--jobs).")
  in
  let journal_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Journal completed points to $(docv) (format: docs/JOURNAL_FORMAT.md) and make \
             the sweep resumable: each point's result is appended and flushed before the \
             sweep moves on, and re-running the same sweep with the same journal skips \
             every point already on disk.  A torn tail left by a crash is detected and \
             truncated on open; a journal written for a different grid or \
             $(b,--protect)/$(b,--retry) is refused.  The final JSONL is byte-identical \
             to an uninterrupted run at every $(b,--jobs).")
  in
  let crash_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-after" ] ~docv:"N"
          ~doc:
            "Testing knob for the crash-safety gate: kill this process with SIGKILL — no \
             cleanup, no flush beyond the journal's own — immediately after the $(docv)-th \
             record of this run becomes durable.  Requires $(b,--journal).")
  in
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Execute points across $(docv) subprocess workers instead of in-process \
             domains (0, the default: in-process $(b,--jobs) pool).  Workers speak a \
             CRC-checked frame protocol over pipes, heartbeat before every task, and are \
             crash-stop: a worker that dies, hangs, or corrupts its stream is killed and \
             its tasks reassigned to survivors with backoff; if every worker dies the \
             remainder runs in-process.  Output and journal bytes are identical at every \
             $(docv) and under any $(b,--chaos) schedule.")
  in
  let chaos_conv =
    let parse s =
      match Fault.Chaos.of_string s with Ok c -> Ok c | Error m -> Error (`Msg m)
    in
    Arg.conv (parse, fun fmt c -> Format.pp_print_string fmt (Fault.Chaos.to_string c))
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some chaos_conv) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Testing knob for the fault-tolerance gate: inject deterministic worker \
             faults, e.g. $(b,kill:worker=2,after=5;hang:worker=0,after=9) or \
             $(b,garbage:worker=1,after=3;seed=7).  Faults fire by completed-task count, \
             so a schedule reproduces exactly.  Requires $(b,--workers).")
  in
  let heartbeat_timeout_arg =
    Arg.(
      value
      & opt (positive_float_conv "heartbeat timeout") Sim.Dispatch.default_heartbeat_timeout
      & info [ "heartbeat-timeout" ] ~docv:"SECS"
          ~doc:
            "Declare a worker crashed after $(docv) seconds of silence.  Workers beat \
             before each task, so this bounds one task's compute time, not a whole \
             batch's.  Over TCP this is also the partition detector: a peer silent past \
             the deadline is condemned and its tasks reassigned, while a merely slow link \
             that still beats in time costs nothing.")
  in
  let batch_arg =
    Arg.(
      value
      & opt batch_conv (`Fixed Sim.Dispatch.default_batch)
      & info [ "batch" ] ~docv:"N|auto"
          ~doc:
            "Task indices per worker batch (work-stealing granularity), or $(b,auto) for \
             throughput-adaptive sizing: each worker's next batch is sized from an EWMA of \
             its observed task rate, clamped to [$(b,--batch-min), $(b,--batch-max)], and \
             idle workers speculatively re-execute a straggler's in-flight tail \
             (first-result-wins keeps output bytes identical to any fixed batch).")
  in
  let batch_min_arg =
    Arg.(
      value
      & opt (count_conv "minimum batch size") Sim.Dispatch.default_min_batch
      & info [ "batch-min" ] ~docv:"N"
          ~doc:
            "Lower clamp (and initial probe size) for $(b,--batch auto).  Must be at least \
             1 and at most $(b,--batch-max).")
  in
  let batch_max_arg =
    Arg.(
      value
      & opt (count_conv "maximum batch size") Sim.Dispatch.default_max_batch
      & info [ "batch-max" ] ~docv:"N"
          ~doc:"Upper clamp for $(b,--batch auto).")
  in
  let stats_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON scheduler report to $(docv) after the sweep: wall time, the \
             lifecycle counters from the stats line, and a $(b,worker_stats) block with \
             per-worker tasks, EWMA throughput, batches issued, and speculative wins.  \
             Kept out of the row stream so the JSONL stays byte-identical across \
             schedulers.")
  in
  let backoff_cap_arg =
    Arg.(
      value
      & opt (positive_float_conv "backoff cap") Sim.Dispatch.default_backoff_cap
      & info [ "backoff-cap" ] ~docv:"SECS"
          ~doc:
            "Ceiling on the exponential backoff applied when a dead worker's batch is \
             requeued (the delay is min($(docv), 0.05·2^(attempt−1)) seconds).")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some port_conv) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:
            "Accept remote workers on TCP $(docv) alongside (or instead of) $(b,--workers) \
             subprocesses.  Start them with $(b,oraclesize worker --connect HOST:PORT); \
             peers must present the same $(b,--token).  Output bytes are identical at any \
             local/remote mix, under partitions, and across worker rejoins.")
  in
  let token_arg =
    Arg.(
      value
      & opt (some token_conv) None
      & info [ "token" ] ~docv:"SECRET"
          ~doc:
            "Shared-secret authentication token for $(b,--listen).  A connecting worker \
             whose hello does not carry exactly this token is disconnected before any \
             sweep state is sent to it.  Default: empty (only workers announcing an empty \
             token are accepted).")
  in
  let expect_remote_arg =
    Arg.(
      value
      & opt (count_conv "remote worker count") 0
      & info [ "expect-remote" ] ~docv:"N"
          ~doc:
            "Hold the handshake barrier until $(docv) remote workers have joined (or a \
             grace of 3× the heartbeat timeout expires), so chaos fault placement is \
             reproducible across the remote fleet.  Requires $(b,--listen).")
  in
  let worker_logs_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "worker-logs" ] ~docv:"DIR"
          ~doc:
            "Redirect each worker's stderr to $(docv)/worker-<id>.log (directory created \
             if missing) instead of inheriting this process's stderr.")
  in
  (* The declarative grid runner: the cross product of (protocol × plan ×
     family × n × scheduler × rep), executed over a domain pool with
     per-worker graph and advice caches, one adversarial harness run per
     point.  Every seed derives from grid coordinates, results land in
     pre-sized slots, and rows are serialized in one ordered pass after
     the join — the JSONL is byte-identical at -j 1 and -j 8, resumed or
     not.  Verdict classes are data, not failures: the exit status is 0
     as long as every point executed (2 on a bad spec or unusable
     journal, 1 if a point raised). *)
  let run grid out journal crash_after protect retry jobs workers chaos heartbeat_timeout
      batch batch_min batch_max stats_out backoff_cap listen token expect_remote worker_logs =
    if retry < 0 then begin
      Printf.eprintf "oraclesize: --retry must be non-negative\n";
      exit 2
    end;
    (* Batch-clamp nonsense is a usage error on par with an unparsable
       flag value: Cmdliner's cli_error exit code, before any worker is
       spawned. *)
    if batch_min < 1 then begin
      Printf.eprintf "oraclesize sweep: --batch-min must be at least 1, got %d\n" batch_min;
      exit 124
    end;
    if batch_min > batch_max then begin
      Printf.eprintf "oraclesize sweep: --batch-min %d exceeds --batch-max %d\n" batch_min
        batch_max;
      exit 124
    end;
    let batching =
      match batch with
      | `Fixed n -> Sim.Dispatch.Fixed n
      | `Auto -> Sim.Dispatch.Auto { min_batch = batch_min; max_batch = batch_max }
    in
    if crash_after <> None && journal = None then begin
      Printf.eprintf "oraclesize sweep: --crash-after requires --journal\n";
      exit 2
    end;
    if workers < 0 then begin
      Printf.eprintf "oraclesize sweep: --workers must be non-negative\n";
      exit 2
    end;
    if chaos <> None && workers = 0 then begin
      Printf.eprintf
        "oraclesize sweep: --chaos requires --workers (remote workers take their own \
         --chaos on their command line)\n";
      exit 2
    end;
    if token <> None && listen = None then begin
      Printf.eprintf "oraclesize sweep: --token requires --listen\n";
      exit 2
    end;
    if expect_remote > 0 && listen = None then begin
      Printf.eprintf "oraclesize sweep: --expect-remote requires --listen\n";
      exit 2
    end;
    let jobs = resolve_jobs jobs in
    List.iter
      (fun p ->
        if protocol_of_name p = None then begin
          Printf.eprintf "oraclesize sweep: unknown protocol %S (wakeup or broadcast)\n" p;
          exit 2
        end)
      grid.Sim.Sweep.protocols;
    let pts = Sim.Sweep.points grid in
    let on_append =
      Option.map
        (fun limit appended ->
          if appended >= limit then begin
            flush stderr;
            Unix.kill (Unix.getpid ()) Sys.sigkill
          end)
        crash_after
    in
    let buf = Buffer.create 4096 in
    let graceful = ref 0 in
    let emit_row p e =
      (match e.Sim.Journal.verdict_class with
      | Sim.Journal.Completed | Sim.Journal.Degraded -> incr graceful
      | Sim.Journal.Stalled | Sim.Journal.Violated -> ());
      Buffer.add_string buf (row_of_entry p e);
      Buffer.add_char buf '\n'
    in
    let pool_outcome () =
      Sim.Sweep.run_journaled ~jobs ?journal ~context:(sweep_context ~protect ~retry)
        ?on_append
        ~local:(fun () -> (Sim.Sweep.Cache.create (), Sim.Sweep.Cache.create ()))
        ~f:(fun caches p -> execute_point grid ~protect ~retry caches p)
        ~emit:emit_row grid
    in
    let wall0 = Unix.gettimeofday () in
    let cpu0 = Sys.time () in
    (* Captured before shutdown for --stats-out; None on the pool path. *)
    let captured = ref None in
    let outcome =
      if workers = 0 && listen = None then pool_outcome ()
      else begin
        (* Distributed path: subprocess and/or remote TCP workers under
           Dispatch, the same chunked journaled core via
           map_journaled_via.  Determinism is untouched — appends and
           emission stay in canonical order on this process — so bytes
           match the in-process path exactly. *)
        let ctx =
          { Sim.Journal.spec = Sim.Sweep.to_string grid; extra = sweep_context ~protect ~retry }
        in
        (match worker_logs with
        | None -> ()
        | Some dir -> (
          (* mkdir -p: CI points this at nested per-scenario dirs. *)
          let rec mkdirs d =
            try Unix.mkdir d 0o755 with
            | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
            | Unix.Unix_error (Unix.ENOENT, _, _) when Filename.dirname d <> d ->
              mkdirs (Filename.dirname d);
              Unix.mkdir d 0o755
          in
          try mkdirs dir
          with Unix.Unix_error (e, _, _) ->
            Printf.eprintf "oraclesize sweep: cannot create --worker-logs %s: %s\n" dir
              (Unix.error_message e);
            exit 2));
        let token = Option.value token ~default:"" in
        let command ~id =
          let base = [| Sys.executable_name; "worker"; "--id"; string_of_int id |] in
          let base =
            if token = "" then base else Array.append base [| "--token"; token |]
          in
          match chaos with
          | None -> base
          | Some c -> Array.append base [| "--chaos"; Fault.Chaos.to_string c |]
        in
        let listener =
          Option.map
            (fun port ->
              match Sim.Transport.listen ~port () with
              | Ok l -> l
              | Error e ->
                Printf.eprintf "oraclesize sweep: %s\n" e;
                exit 2)
            listen
        in
        (* Lazy so the in-process caches are only built if degradation
           actually happens. *)
        let fallback_caches =
          lazy (Sim.Sweep.Cache.create (), Sim.Sweep.Cache.create ())
        in
        let fallback i =
          match execute_point grid ~protect ~retry (Lazy.force fallback_caches) pts.(i) with
          | entry -> Ok entry
          | exception e -> Error (Printexc.to_string e)
        in
        let d =
          Sim.Dispatch.create ~workers ~batching ~heartbeat_timeout ~backoff_cap ~token
            ?listener ~expect_remote ?stderr_dir:worker_logs
            ~log:(fun m -> Printf.eprintf "sweep: %s\n%!" m)
            ~command ~context:ctx ~fallback ()
        in
        Fun.protect
          ~finally:(fun () -> Sim.Dispatch.shutdown d)
          (fun () ->
            if Sim.Dispatch.live_workers d = 0 && listener = None then begin
              Printf.eprintf "sweep: no workers spawned; degrading to the in-process pool\n%!";
              pool_outcome ()
            end
            else begin
              let outcome =
                Sim.Sweep.map_journaled_via
                  ?journal:(Option.map (fun path -> (path, ctx)) journal)
                  ?on_append
                  ~key:(fun p -> p.Sim.Sweep.seed)
                  ~run:(fun idx -> Sim.Dispatch.run d idx)
                  ~emit:(fun _i p e -> emit_row p e)
                  pts
              in
              let s = Sim.Dispatch.stats d in
              let ws = Sim.Dispatch.worker_stats d in
              captured := Some (s, ws);
              Printf.eprintf
                "sweep: workers spawned=%d connected=%d died=%d auth-failures=%d \
                 rate-limited=%d reassigned-batches=%d inline-tasks=%d\n"
                s.Sim.Dispatch.spawned s.Sim.Dispatch.connected s.Sim.Dispatch.died
                s.Sim.Dispatch.auth_failures s.Sim.Dispatch.rate_limited
                s.Sim.Dispatch.reassigned s.Sim.Dispatch.inline_tasks;
              List.iter
                (fun (w : Sim.Dispatch.worker_stat) ->
                  Printf.eprintf
                    "sweep: worker %d: tasks=%d wins=%d rate=%.1f/s batches=%d \
                     speculative=%d spec-wins=%d reported=%d\n"
                    w.worker w.tasks w.wins w.rate w.batches w.speculative w.spec_wins
                    w.reported)
                ws;
              outcome
            end)
      end
    in
    let wall = Unix.gettimeofday () -. wall0 in
    let cpu = Sys.time () -. cpu0 in
    (match stats_out with
    | None -> ()
    | Some file -> (
      let s, ws =
        match !captured with
        | Some c -> c
        | None ->
          (* Pool path: no dispatch ran; emit a uniform report so
             tooling can parse wall_seconds regardless of topology. *)
          ( Sim.Dispatch.
              {
                spawned = 0;
                spawn_failures = 0;
                connected = 0;
                auth_failures = 0;
                rate_limited = 0;
                died = 0;
                reassigned = 0;
                inline_tasks = 0;
              },
            [] )
      in
      let {
        Sim.Dispatch.spawned;
        spawn_failures = _;
        connected;
        auth_failures;
        rate_limited;
        died;
        reassigned;
        inline_tasks;
      } =
        s
      in
      let spec_batches =
        List.fold_left (fun a (w : Sim.Dispatch.worker_stat) -> a + w.speculative) 0 ws
      in
      let spec_wins =
        List.fold_left (fun a (w : Sim.Dispatch.worker_stat) -> a + w.spec_wins) 0 ws
      in
      let batch_json =
        match batch with `Fixed n -> string_of_int n | `Auto -> "\"auto\""
      in
      let b = Buffer.create 1024 in
      Printf.bprintf b
        "{\"schema\":\"oracle-size/worker-stats/v1\",\"workers\":%d,\"batch\":%s,\"batch_min\":%d,\"batch_max\":%d,\"wall_seconds\":%.6f,\"cpu_seconds\":%.6f,\"spawned\":%d,\"connected\":%d,\"died\":%d,\"auth_failures\":%d,\"rate_limited\":%d,\"reassigned\":%d,\"inline_tasks\":%d,\"speculative_batches\":%d,\"speculative_wins\":%d,\"worker_stats\":["
        workers batch_json batch_min batch_max wall cpu spawned connected died auth_failures
        rate_limited reassigned inline_tasks spec_batches spec_wins;
      List.iteri
        (fun i (w : Sim.Dispatch.worker_stat) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b
            "{\"worker\":%d,\"tasks\":%d,\"wins\":%d,\"ewma_tput\":%.3f,\"batches\":%d,\"speculative\":%d,\"spec_wins\":%d,\"reported\":%d}"
            w.worker w.tasks w.wins w.rate w.batches w.speculative w.spec_wins w.reported)
        ws;
      Buffer.add_string b "]}\n";
      try
        let oc = open_out file in
        Buffer.output_buffer oc b;
        close_out oc
      with Sys_error msg ->
        Printf.eprintf "oraclesize sweep: cannot write --stats-out: %s\n" msg;
        exit 2));
    match outcome with
    | Error msg ->
      Printf.eprintf "oraclesize sweep: %s\n" msg;
      exit 2
    | Ok stats ->
      List.iter
        (fun (i, msg) ->
          Printf.eprintf "oraclesize sweep: point %s raised: %s\n"
            (Sim.Sweep.point_label pts.(i)) msg)
        stats.Sim.Sweep.failed;
      let oc, finish =
        match out with
        | "-" -> (stdout, fun () -> flush stdout)
        | file -> (
          try
            let oc = open_out file in
            (oc, fun () -> close_out oc)
          with Sys_error msg ->
            Printf.eprintf "oraclesize sweep: cannot open output file: %s\n" msg;
            exit 2)
      in
      Buffer.output_buffer oc buf;
      finish ();
      (match (journal, stats.Sim.Sweep.recovery) with
      | Some path, Some r ->
        Printf.eprintf
          "sweep: journal %s: replayed %d, skipped %d, executed %d (torn %d bytes, %d \
           duplicates)\n"
          path r.Sim.Journal.replayed stats.Sim.Sweep.skipped stats.Sim.Sweep.executed
          r.Sim.Journal.torn_bytes r.Sim.Journal.duplicates
      | _ -> ());
      Printf.eprintf "sweep: %d points, %d graceful, %d not, jobs=%d wall=%.2fs cpu=%.2fs\n"
        (Array.length pts) !graceful
        (Array.length pts - List.length stats.Sim.Sweep.failed - !graceful)
        jobs wall cpu;
      if stats.Sim.Sweep.failed <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a declarative experiment grid (protocol × plan × family × n × scheduler × \
          rep) in parallel, one JSON row per point; $(b,--journal) makes it crash-safe \
          and resumable.")
    Term.(
      const run $ grid_arg $ out_arg $ journal_out_arg $ crash_after_arg $ protect_arg
      $ retry_arg $ jobs_arg $ workers_arg $ chaos_arg $ heartbeat_timeout_arg $ batch_arg
      $ batch_min_arg $ batch_max_arg $ stats_out_arg $ backoff_cap_arg $ listen_arg
      $ token_arg $ expect_remote_arg $ worker_logs_arg)

(* {1 journal} *)

(* Open a journal for inspection.  Opening recovers: a torn tail is
   truncated even on the read paths (ls/verify), which keeps the
   recovery rule single — docs/JOURNAL_FORMAT.md, 'Recovery'. *)
let open_journal_or_die path =
  match Sim.Journal.open_ ~path () with
  | Error msg ->
    Printf.eprintf "oraclesize journal: %s\n" msg;
    exit 2
  | Ok (j, stats) ->
    Sim.Journal.close j;
    (j, stats)

(* Rebuild the (grid, protect, retry, seed → point) world a journal was
   written for, from its own superblock — ls and verify are
   self-contained: the journal file is their only input. *)
let journal_world j =
  let ctx = Sim.Journal.context j in
  let grid =
    match Sim.Sweep.of_string ctx.Sim.Journal.spec with
    | Ok g -> g
    | Error m ->
      Printf.eprintf "oraclesize journal: superblock spec does not parse: %s\n" m;
      exit 2
  in
  let protect, retry =
    match parse_sweep_context ctx.Sim.Journal.extra with
    | Ok pr -> pr
    | Error m ->
      Printf.eprintf "oraclesize journal: %s\n" m;
      exit 2
  in
  let pts = Sim.Sweep.points grid in
  let by_seed = Hashtbl.create (Array.length pts) in
  Array.iter (fun p -> Hashtbl.replace by_seed p.Sim.Sweep.seed p) pts;
  (grid, protect, retry, by_seed)

let journal_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"The journal file.")

let journal_ls_cmd =
  let run file =
    let j, stats = open_journal_or_die file in
    let ctx = Sim.Journal.context j in
    let _, _, _, by_seed = journal_world j in
    Printf.printf "journal:  %s\n" file;
    Printf.printf "spec:     %s\n" ctx.Sim.Journal.spec;
    Printf.printf "context:  %s\n" ctx.Sim.Journal.extra;
    Printf.printf "records:  %d (torn %d bytes truncated, %d duplicate frames ignored)\n"
      (Sim.Journal.count j) stats.Sim.Journal.torn_bytes stats.Sim.Journal.duplicates;
    Printf.printf "%-45s %6s %8s %8s  %s\n" "point" "n" "sent" "rounds" "verdict";
    Sim.Journal.iter j (fun key e ->
        let label =
          match Hashtbl.find_opt by_seed key with
          | Some p -> Sim.Sweep.point_label p
          | None -> Printf.sprintf "<orphan key %d>" key
        in
        Printf.printf "%-45s %6d %8d %8d  %s\n" label e.Sim.Journal.n e.Sim.Journal.messages
          e.Sim.Journal.rounds e.Sim.Journal.verdict)
  in
  Cmd.v
    (Cmd.info "ls" ~doc:"List a journal's identity and records, labeled by grid point.")
    Term.(const run $ journal_file_arg)

let journal_verify_cmd =
  let sample_arg =
    Arg.(
      value & opt int 0
      & info [ "sample" ] ~docv:"K"
          ~doc:
            "Re-execute only $(docv) journaled points, chosen by a seeded deterministic \
             draw, instead of all of them (0, the default: verify every record).")
  in
  let vseed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for the $(b,--sample) draw.")
  in
  (* Byte-equality verification: re-execute journaled points from their
     grid coordinates and compare the re-encoded record frame against
     the stored one.  Because the encoding is canonical, equal bytes
     means the stored record is exactly what a fresh run would have
     written — catching not just bit rot (the CRC's job) but a
     consistently-rewritten record with a valid CRC. *)
  let run file sample vseed jobs =
    let jobs = resolve_jobs jobs in
    let j, _ = open_journal_or_die file in
    let grid, protect, retry, by_seed = journal_world j in
    let keys = ref [] in
    Sim.Journal.iter j (fun key _ -> keys := key :: !keys);
    let keys = List.rev !keys in
    let orphans, known =
      List.partition (fun k -> not (Hashtbl.mem by_seed k)) keys
    in
    List.iter
      (fun k -> Printf.eprintf "journal verify: orphan key %d is not a point of the grid\n" k)
      orphans;
    let targets =
      if sample <= 0 || sample >= List.length known then known
      else
        List.map
          (fun k -> (Sim.Sweep.derive_seed vseed [ "verify"; string_of_int k ], k))
          known
        |> List.sort compare
        |> List.filteri (fun i _ -> i < sample)
        |> List.map snd
    in
    let targets = Array.of_list targets in
    let results =
      Sim.Sweep.map ~jobs
        ~local:(fun () -> (Sim.Sweep.Cache.create (), Sim.Sweep.Cache.create ()))
        ~f:(fun caches _ key ->
          let p = Hashtbl.find by_seed key in
          let recomputed = execute_point grid ~protect ~retry caches p in
          let stored =
            match Sim.Journal.find j key with Some e -> e | None -> assert false
          in
          Sim.Journal.encode_entry ~key recomputed = Sim.Journal.encode_entry ~key stored)
        targets
    in
    let mismatches = ref 0 in
    let errors = ref 0 in
    Array.iteri
      (fun i result ->
        let key = targets.(i) in
        let label = Sim.Sweep.point_label (Hashtbl.find by_seed key) in
        match result with
        | Error msg ->
          incr errors;
          Printf.eprintf "journal verify: %s raised: %s\n" label msg
        | Ok true -> ()
        | Ok false ->
          incr mismatches;
          Printf.eprintf "journal verify: %s: stored record differs from re-execution\n" label)
      results;
    Printf.printf "verify: %d of %d records re-executed, %d mismatches, %d orphans, jobs=%d\n"
      (Array.length targets) (Sim.Journal.count j) !mismatches (List.length orphans) jobs;
    if !mismatches > 0 || !errors > 0 || orphans <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Re-execute journaled points from their coordinates and byte-compare the \
          re-encoded records against the stored ones.")
    Term.(const run $ journal_file_arg $ sample_arg $ vseed_arg $ jobs_arg)

let journal_compact_cmd =
  let run file =
    match Sim.Journal.compact ~path:file () with
    | Error msg ->
      Printf.eprintf "oraclesize journal: %s\n" msg;
      exit 2
    | Ok (kept, stats) ->
      Printf.printf "compacted: %d records kept, %d duplicate frames dropped, %d torn bytes \
                     truncated\n"
        kept stats.Sim.Journal.duplicates stats.Sim.Journal.torn_bytes
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Rewrite a journal as superblock + first occurrence of every key, dropping \
          duplicates and any torn tail, via atomic rename.")
    Term.(const run $ journal_file_arg)

let journal_cmd =
  Cmd.group
    (Cmd.info "journal"
       ~doc:
         "Inspect, verify, and compact sweep journals (format: docs/JOURNAL_FORMAT.md).")
    [ journal_ls_cmd; journal_verify_cmd; journal_compact_cmd ]

(* {1 worker}

   The worker entry point: [oraclesize worker --id N [--chaos SPEC]
   [--connect HOST:PORT] [--token SECRET]].  Spawned by Dispatch over
   pipes, or started by an operator on another machine with --connect.
   Intercepted before Cmdliner so it never shows up in --help — the
   pipe mode's stdin/stdout are protocol pipes, not a terminal — but
   argument validation matches the Cmdliner stance: any bad value is a
   CLI error, exit 124, diagnosed before a single frame moves.
   Everything the worker needs to execute tasks arrives in the config
   frame: the grid spec and the protect/retry context, i.e. the same
   Journal.context the sweep's journal superblock carries, so worker
   and supervisor provably agree on what task index [i] means. *)
let worker_main () =
  let id = ref 0 in
  let chaos = ref Fault.Chaos.none in
  let connect = ref None in
  let token = ref (try Sys.getenv "ORACLE_SIZE_TOKEN" with Not_found -> "") in
  let usage m =
    Printf.eprintf
      "oraclesize worker: %s\nusage: oraclesize worker --id N [--chaos SPEC] [--connect \
       HOST:PORT] [--token SECRET]\n"
      m;
    exit 124
  in
  let rec parse_args i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--id" when i + 1 < Array.length Sys.argv -> (
        match int_of_string_opt Sys.argv.(i + 1) with
        | Some n when n >= 0 ->
          id := n;
          parse_args (i + 2)
        | _ -> usage (Printf.sprintf "invalid --id %S (expected a non-negative integer)" Sys.argv.(i + 1)))
      | "--chaos" when i + 1 < Array.length Sys.argv -> (
        match Fault.Chaos.of_string Sys.argv.(i + 1) with
        | Ok c ->
          chaos := c;
          parse_args (i + 2)
        | Error m -> usage m)
      | "--connect" when i + 1 < Array.length Sys.argv -> (
        match Sim.Transport.parse_hostport Sys.argv.(i + 1) with
        | Ok hp ->
          connect := Some hp;
          parse_args (i + 2)
        | Error m -> usage m)
      | "--token" when i + 1 < Array.length Sys.argv ->
        if Sys.argv.(i + 1) = "" then usage "token must not be empty"
        else if String.length Sys.argv.(i + 1) > Sim.Worker.max_auth_bytes then
          usage (Printf.sprintf "token longer than %d bytes" Sim.Worker.max_auth_bytes)
        else begin
          token := Sys.argv.(i + 1);
          parse_args (i + 2)
        end
      | a -> usage (Printf.sprintf "unknown or incomplete argument %S" a)
  in
  parse_args 2;
  let exec (ctx : Sim.Journal.context) =
    let ( let* ) = Result.bind in
    let* grid = Sim.Sweep.of_string ctx.Sim.Journal.spec in
    let* protect, retry = parse_sweep_context ctx.Sim.Journal.extra in
    let* () =
      match List.find_opt (fun p -> protocol_of_name p = None) grid.Sim.Sweep.protocols with
      | Some p -> Error (Printf.sprintf "unknown protocol %S" p)
      | None -> Ok ()
    in
    let pts = Sim.Sweep.points grid in
    let caches = (Sim.Sweep.Cache.create (), Sim.Sweep.Cache.create ()) in
    Ok
      (fun i ->
        if i < 0 || i >= Array.length pts then
          Error (Printf.sprintf "task index %d outside grid of %d points" i (Array.length pts))
        else
          match execute_point grid ~protect ~retry caches pts.(i) with
          | entry -> Ok entry
          | exception e -> Error (Printexc.to_string e))
  in
  match !connect with
  | None ->
    (* Pipe mode threads the same network shim as TCP, so delay/slow/
       trickle chaos directives degrade subprocess workers too — that
       is what lets a single-host CI build a deterministic straggler
       fleet out of --workers subprocesses. *)
    let shim = Sim.Transport.Shim.create () in
    let io =
      Sim.Transport.shimmed shim (Sim.Transport.fd_io ~input:Unix.stdin ~output:Unix.stdout)
    in
    exit
      (match
         Sim.Worker.serve_io ~id:!id ~auth:!token
           ~chaos:(Fault.Chaos.hook ~net:shim !chaos ~worker:!id)
           ~exec io
       with
      | `Exit n -> n
      | `Lost `Eof -> 0
      | `Lost `Gone -> 1)
  | Some (host, port) ->
    (* TCP mode: connect, serve, and — because a condemned worker is
       merely disconnected, not killed — rejoin on connection loss.
       The chaos hook and completed-task counter persist across
       sessions, so one worker's chaos schedule (and the network shim
       its delay/trickle directives arm) spans its rejoins. *)
    let id = !id in
    let shim = Sim.Transport.Shim.create () in
    let hook = Fault.Chaos.hook ~net:shim !chaos ~worker:id in
    let completed = ref 0 in
    let max_rejoins = Sim.Dispatch.default_max_rejoin in
    let rejoins = ref 0 in
    let rec session ~attempts =
      match Sim.Transport.connect ~host ~port ~attempts ~retry_delay:0.25 () with
      | Error e ->
        Sim.Worker.logf ~id "%s" e;
        exit 1
      | Ok fd -> (
        let io = Sim.Transport.shimmed shim (Sim.Transport.socket_io fd) in
        let outcome =
          Sim.Worker.serve_io ~id ~auth:!token ~chaos:hook ~completed ~exec io
        in
        io.Sim.Transport.close ();
        match outcome with
        | `Exit n -> exit n
        | `Lost reason ->
          incr rejoins;
          if !rejoins > max_rejoins then begin
            Sim.Worker.logf ~id "rejoin budget exhausted after %d attempts" max_rejoins;
            exit 4
          end
          else begin
            Sim.Worker.logf ~id "connection lost (%s); rejoining (%d/%d)"
              (match reason with `Eof -> "EOF" | `Gone -> "write failed or timed out")
              !rejoins max_rejoins;
            Unix.sleepf 0.25;
            (* Rejoin attempts are short: a supervisor that finished or
               degraded is gone for good, and exiting beats spinning. *)
            session ~attempts:8
          end)
    in
    (* The first connect is patient — operators routinely start remote
       workers before the supervisor binds its listener. *)
    session ~attempts:40

let () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "worker" then worker_main ();
  let doc = "oracle-size experiments: wakeup vs broadcast knowledge requirements" in
  let info = Cmd.info "oraclesize" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            graph_cmd; wakeup_cmd; broadcast_cmd; separation_cmd; adversary_cmd; gossip_cmd;
            explore_cmd; radio_cmd; mst_cmd; spanner_cmd; perf_cmd; sweep_cmd; journal_cmd;
          ]))
